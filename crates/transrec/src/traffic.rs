//! Live fleet serving: seeded arrival streams, per-device request queues
//! with utilization-aware backpressure, and replacement economics
//! (DESIGN.md §13).
//!
//! Where [`fleet`](crate::fleet) drives devices with back-to-back mission
//! suites, this module models a *serving* fleet: each device receives a
//! deterministic stream of offload requests drawn from a [`TrafficSpec`]
//! arrival process (steady Poisson, diurnal via thinning, heavy-tailed via
//! Pareto inter-arrivals), queues them FIFO, and serves them on the fabric
//! — unless utilization-aware backpressure sheds the request or defers it
//! to the slower GPP because the tracker shows hot FUs. Per-FU stress from
//! served requests folds into [`DeviceLifetime`] wear day by day; a device
//! whose allocation is exhausted dies mid-day and is replaced at the next
//! day boundary ([`ReplacementSpec`]), so campaigns model a living fleet
//! with retirement, replacement and cost accounting rather than a fixed
//! cohort.
//!
//! The engine keeps the fleet-scale guarantees of
//! [`run_fleet_campaign`](crate::fleet::run_fleet_campaign): phase 1
//! simulates one serving trajectory per (traffic × policy × lane)
//! equivalence class, phase 2 streams device shards through a weighted
//! merge of class outcomes, and a checkpointed campaign resumes
//! byte-identically after any kill — `results/serving.json` is identical
//! for every `--jobs` value, shard split, and stop/resume point.
//!
//! # Examples
//!
//! ```
//! use cgra::Fabric;
//! use transrec::sweep::SuiteSpec;
//! use transrec::traffic::{run_serving, ServePlan, TrafficSpec};
//! use uaware::PolicySpec;
//!
//! let plan = ServePlan::new(0xDAC2020, Fabric::be())
//!     .policy(PolicySpec::Baseline)
//!     .suite(SuiteSpec::subset("crc", vec![1]))
//!     .traffic(TrafficSpec::Steady { per_hour: 60 })
//!     .devices(2)
//!     .lanes(1)
//!     .clock_hz(2_000)
//!     .horizon_days(1);
//! let report = run_serving(&plan, 1).unwrap();
//! let cell = report.cell("steady@rph-60", "baseline").unwrap();
//! assert_eq!(cell.served_cgra + cell.served_gpp + cell.shed, cell.total_requests);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::Path;
use std::str::FromStr;

use cgra::{Fabric, FaultMask};
use lifetime::{DeviceLifetime, FleetAccum, FleetStats};
use mibench::Workload;
use nbti::CalibratedAging;
use obs::Registry;
use rand::distr::{Distribution, Exp, Pareto};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;
use tracing::{span, Level};
use uaware::{derive_cell_seed, PolicySpec, UtilizationGrid, UtilizationTracker};

use crate::fleet::{fnv1a64, CampaignOptions, DEFAULT_SHARD_DEVICES};
use crate::sweep::SuiteSpec;
use crate::system::{run_gpp_only, BuildError, System, SystemConfig, SystemError};
use crate::telemetry::{EventCtx, Observer, ProbeReport, ProbeSpec, SimEvent};

/// Seconds in one serving day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Default device clock in Hz. The serving model measures latency in
/// device cycles and converts through this clock, so it sets both the
/// cycles-per-day budget and the absolute load one request exerts.
pub const DEFAULT_CLOCK_HZ: u64 = 100_000;

/// Default mean request rate (requests per hour).
pub const DEFAULT_PER_HOUR: u64 = 6_000;

/// Default diurnal swing: the arrival rate peaks at `1 + swing` and dips
/// to `1 - swing` times the mean over one day (percent of the mean).
pub const DEFAULT_SWING_PCT: u32 = 80;

/// Default Pareto shape for heavy-tailed traffic, in thousandths
/// (`1500` = α 1.5: finite mean, infinite variance).
pub const DEFAULT_ALPHA_MILLI: u32 = 1_500;

/// Default deployment years one serving day models (DESIGN.md §13): the
/// wear clock runs faster than the request clock so a 30-day campaign
/// spans 15 deployment years.
pub const DEFAULT_YEARS_PER_DAY: f64 = 0.5;

/// Default traffic period in days: arrivals repeat after this many days,
/// which bounds the distinct day simulations per trajectory.
pub const DEFAULT_PATTERN_DAYS: u64 = 3;

/// Default serving horizon in days.
pub const DEFAULT_HORIZON_DAYS: u64 = 30;

/// Cycles one [`crate::Session::run_for`] slice advances while a request
/// is served — requests feed the system incrementally, never in one
/// opaque run (DESIGN.md §13).
const SERVICE_SLICE_CYCLES: u64 = 10_000;

/// Salt mixed into the per-lane seed before deriving per-day arrival
/// streams, so traffic draws never alias the workload-construction
/// streams built from the same lane seed.
const TRAFFIC_STREAM_SALT: u64 = 0x5452_4146_4649_4343;

/// An arrival process as data: the shape of one device's request stream
/// (DESIGN.md §13). The compact grammar mirrors
/// [`PolicySpec`]/[`ProbeSpec`]: `steady@rph-6000`,
/// `diurnal@rph-6000+swing-80`, `heavy@rph-6000+alpha-1500`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Homogeneous Poisson arrivals: exponential inter-arrival times at a
    /// constant mean rate.
    Steady {
        /// Mean request rate in requests per hour.
        per_hour: u64,
    },
    /// Diurnal non-homogeneous Poisson arrivals via thinning: the rate
    /// follows `1 - swing·cos(2πt/day)` around the mean — a midnight
    /// trough and a midday peak.
    Diurnal {
        /// Mean request rate in requests per hour.
        per_hour: u64,
        /// Peak-to-mean swing in percent of the mean rate (`0..=100`).
        swing_pct: u32,
    },
    /// Bursty, heavy-tailed arrivals: Pareto inter-arrival times with
    /// shape α and the scale chosen so the mean rate matches `per_hour`.
    Heavy {
        /// Mean request rate in requests per hour.
        per_hour: u64,
        /// Pareto shape α in thousandths (`> 1000` so the mean exists).
        alpha_milli: u32,
    },
}

impl TrafficSpec {
    /// The default steady profile (`steady@rph-6000`).
    pub fn steady() -> TrafficSpec {
        TrafficSpec::Steady { per_hour: DEFAULT_PER_HOUR }
    }

    /// The default diurnal profile (`diurnal@rph-6000+swing-80`).
    pub fn diurnal() -> TrafficSpec {
        TrafficSpec::Diurnal { per_hour: DEFAULT_PER_HOUR, swing_pct: DEFAULT_SWING_PCT }
    }

    /// The default heavy-tailed profile (`heavy@rph-6000+alpha-1500`).
    pub fn heavy() -> TrafficSpec {
        TrafficSpec::Heavy { per_hour: DEFAULT_PER_HOUR, alpha_milli: DEFAULT_ALPHA_MILLI }
    }

    /// The mean request rate in requests per hour.
    pub fn per_hour(&self) -> u64 {
        match *self {
            TrafficSpec::Steady { per_hour }
            | TrafficSpec::Diurnal { per_hour, .. }
            | TrafficSpec::Heavy { per_hour, .. } => per_hour,
        }
    }

    /// Checks the spec's parameters: a positive rate, a swing within
    /// `0..=100`%, a Pareto shape above 1 (finite mean).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.per_hour() == 0 {
            return Err("request rate must be positive".into());
        }
        match *self {
            TrafficSpec::Steady { .. } => Ok(()),
            TrafficSpec::Diurnal { swing_pct, .. } if swing_pct > 100 => {
                Err(format!("swing must be 0..=100 percent, got {swing_pct}"))
            }
            TrafficSpec::Diurnal { .. } => Ok(()),
            TrafficSpec::Heavy { alpha_milli, .. } if alpha_milli <= 1000 => {
                Err(format!("alpha must exceed 1000 milli (a finite mean), got {alpha_milli}"))
            }
            TrafficSpec::Heavy { .. } => Ok(()),
        }
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrafficSpec::Steady { per_hour } => write!(f, "steady@rph-{per_hour}"),
            TrafficSpec::Diurnal { per_hour, swing_pct } => {
                write!(f, "diurnal@rph-{per_hour}+swing-{swing_pct}")
            }
            TrafficSpec::Heavy { per_hour, alpha_milli } => {
                write!(f, "heavy@rph-{per_hour}+alpha-{alpha_milli}")
            }
        }
    }
}

impl FromStr for TrafficSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<TrafficSpec, String> {
        let (kind, tail) = match s.split_once('@') {
            Some((kind, tail)) => (kind, Some(tail)),
            None => (s, None),
        };
        let mut per_hour = DEFAULT_PER_HOUR;
        let mut swing_pct = None;
        let mut alpha_milli = None;
        for part in tail.into_iter().flat_map(|t| t.split('+')) {
            let (key, value) = part
                .split_once('-')
                .ok_or_else(|| format!("malformed traffic parameter {part:?} (want key-value)"))?;
            let value: u64 =
                value.parse().map_err(|_| format!("malformed traffic value {value:?}"))?;
            match key {
                "rph" => per_hour = value,
                "swing" => swing_pct = Some(value as u32),
                "alpha" => alpha_milli = Some(value as u32),
                _ => return Err(format!("unknown traffic parameter {key:?}")),
            }
        }
        let spec = match kind {
            "steady" if swing_pct.is_none() && alpha_milli.is_none() => {
                TrafficSpec::Steady { per_hour }
            }
            "diurnal" if alpha_milli.is_none() => {
                TrafficSpec::Diurnal { per_hour, swing_pct: swing_pct.unwrap_or(DEFAULT_SWING_PCT) }
            }
            "heavy" if swing_pct.is_none() => TrafficSpec::Heavy {
                per_hour,
                alpha_milli: alpha_milli.unwrap_or(DEFAULT_ALPHA_MILLI),
            },
            "steady" | "diurnal" | "heavy" => {
                return Err(format!("traffic spec {s:?} mixes parameters of another profile"));
            }
            _ => {
                return Err(format!(
                    "unknown traffic spec {s:?} (want steady[@rph-N], \
                     diurnal[@rph-N+swing-P], or heavy[@rph-N+alpha-M])"
                ));
            }
        };
        spec.validate().map_err(|e| format!("invalid traffic spec {s:?}: {e}"))?;
        Ok(spec)
    }
}

/// One request in a device's daily arrival stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in device cycles since midnight.
    pub cycle: u64,
    /// Index of the requested workload in the device's suite.
    pub workload: u32,
}

/// Generates the deterministic arrival stream of one serving day
/// (DESIGN.md §13): inter-arrival times drawn from `spec`'s process —
/// exponential for [`TrafficSpec::Steady`], exponential candidates
/// thinned against the diurnal rate curve for [`TrafficSpec::Diurnal`],
/// Pareto for [`TrafficSpec::Heavy`] — with each arrival's workload drawn
/// uniformly from the suite. The stream is a pure function of
/// `(spec, stream_seed, day)`: the same inputs reproduce it bit for bit.
///
/// # Panics
///
/// Panics on an invalid `spec` ([`TrafficSpec::validate`]), a zero
/// `clock_hz`, or a zero `workloads` count — plan-construction bugs.
pub fn day_traffic(
    spec: &TrafficSpec,
    stream_seed: u64,
    day: u64,
    clock_hz: u64,
    workloads: u32,
) -> Vec<Arrival> {
    spec.validate().unwrap_or_else(|e| panic!("invalid traffic spec {spec}: {e}"));
    assert!(clock_hz > 0, "clock_hz must be positive");
    assert!(workloads > 0, "a serving day needs at least one workload to request");
    let mut rng = SmallRng::seed_from_u64(derive_cell_seed(stream_seed ^ TRAFFIC_STREAM_SALT, day));
    let day_cycles = (clock_hz * SECONDS_PER_DAY) as f64;
    // Mean inter-arrival gap in cycles; per_hour > 0 keeps it finite.
    let mean_gap = (clock_hz * 3_600) as f64 / spec.per_hour() as f64;
    let mut arrivals = Vec::new();
    let mut push = |rng: &mut SmallRng, t: f64| {
        arrivals.push(Arrival { cycle: t as u64, workload: rng.random_range(0..workloads) });
    };
    match *spec {
        TrafficSpec::Steady { .. } => {
            let gap = Exp::new(1.0 / mean_gap).expect("positive rate");
            let mut t = gap.sample(&mut rng);
            while t < day_cycles {
                push(&mut rng, t);
                t += gap.sample(&mut rng);
            }
        }
        TrafficSpec::Diurnal { swing_pct, .. } => {
            // Thinning (Lewis & Shedler): candidates at the peak rate
            // `(1+s)/mean_gap`, each kept with probability `λ(t)/λ_max`
            // where `λ(t) = (1 - s·cos(2πt/day))/mean_gap`.
            let s = swing_pct as f64 / 100.0;
            let gap = Exp::new((1.0 + s) / mean_gap).expect("positive rate");
            let mut t = gap.sample(&mut rng);
            while t < day_cycles {
                let rate = 1.0 - s * (std::f64::consts::TAU * t / day_cycles).cos();
                if rng.random_range(0.0..1.0) * (1.0 + s) <= rate {
                    push(&mut rng, t);
                }
                t += gap.sample(&mut rng);
            }
        }
        TrafficSpec::Heavy { alpha_milli, .. } => {
            // Pareto gaps with mean `scale·α/(α-1)` pinned to `mean_gap`.
            let alpha = alpha_milli as f64 / 1000.0;
            let scale = mean_gap * (alpha - 1.0) / alpha;
            let gap = Pareto::new(scale, alpha).expect("validated shape");
            let mut t = gap.sample(&mut rng);
            while t < day_cycles {
                push(&mut rng, t);
                t += gap.sample(&mut rng);
            }
        }
    }
    arrivals
}

/// A mergeable latency histogram with logarithmic buckets: exact below 8
/// cycles, then 8 sub-buckets per power of two (≤ 12.5% relative error).
/// Counts are integers keyed by bucket index, so merging and scaling are
/// exact — partial histograms aggregate byte-identically regardless of
/// the shard split (DESIGN.md §13).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sorted `(bucket, count)` pairs; buckets with zero count are absent.
    buckets: Vec<(u32, u64)>,
    /// Total recorded observations (the sum of all counts).
    total: u64,
}

/// The bucket index of a latency observation — [`obs::log_bucket`], the
/// workspace's one logarithmic bucketing scheme (DESIGN.md §16).
fn bucket_of(cycles: u64) -> u32 {
    obs::log_bucket(cycles)
}

/// The smallest latency that falls in `bucket` — the value percentiles
/// report (a conservative lower bound).
fn bucket_floor(bucket: u32) -> u64 {
    obs::log_bucket_floor(bucket)
}

impl LatencyHistogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one end-to-end latency observation (cycles from arrival to
    /// service completion).
    pub fn record(&mut self, cycles: u64) {
        self.add(bucket_of(cycles), 1);
    }

    /// Adds `count` observations to `bucket`.
    fn add(&mut self, bucket: u32, count: u64) {
        if count == 0 {
            return;
        }
        let at = self.buckets.partition_point(|&(b, _)| b < bucket);
        match self.buckets.get_mut(at) {
            Some(entry) if entry.0 == bucket => entry.1 += count,
            _ => self.buckets.insert(at, (bucket, count)),
        }
        self.total += count;
    }

    /// Absorbs `other` scaled by `weight` — the equivalence-class fast
    /// path: one class histogram stands for `weight` identical devices.
    pub fn add_scaled(&mut self, other: &LatencyHistogram, weight: u64) {
        for &(bucket, count) in &other.buckets {
            self.add(bucket, count * weight);
        }
    }

    /// Absorbs `other`: the monoid operation (associative, commutative,
    /// [`LatencyHistogram::new`] as identity).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.add_scaled(other, 1);
    }

    /// The latency (in cycles, as the containing bucket's lower bound) at
    /// quantile `q ∈ [0, 1]`; `0` for an empty histogram.
    pub fn percentile_cycles(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for &(bucket, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return bucket_floor(bucket);
            }
        }
        bucket_floor(self.buckets.last().expect("total > 0 implies buckets").0)
    }
}

/// Utilization-aware backpressure knobs (DESIGN.md §13). The queue sheds
/// on depth alone; it defers a request to the GPP when the day's tracker
/// shows a hot FU *and* the queue is already backed up — trading latency
/// (the GPP is slower) against stress on the worn cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackpressureSpec {
    /// Arrivals finding this many requests in flight are dropped
    /// (`0` disables shedding).
    pub shed_depth: u32,
    /// Minimum in-flight depth before a hot fabric defers to the GPP.
    pub defer_depth: u32,
    /// The fabric counts as *hot* when the busiest FU's share of the
    /// day's executions reaches this percentage.
    pub hot_share_pct: u32,
    /// Served requests before the day's share estimate is trusted.
    pub warmup_requests: u64,
}

impl Default for BackpressureSpec {
    fn default() -> BackpressureSpec {
        BackpressureSpec { shed_depth: 64, defer_depth: 8, hot_share_pct: 60, warmup_requests: 32 }
    }
}

/// What replaces a dead device (DESIGN.md §13).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// A factory-fresh device: zero wear.
    Pristine,
    /// A refurbished device with uniform pre-aging: every FU starts at
    /// `age_pct` percent of the calibration anchor (`0..100`).
    Refurbished {
        /// Pre-age as a percentage of [`CalibratedAging::anchor_years`].
        age_pct: u32,
    },
}

/// Replacement economics: what a dead device is swapped for, and what the
/// swap costs (DESIGN.md §13). A death mid-day sheds the rest of that
/// day's requests; the replacement enters service at the next midnight.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplacementSpec {
    /// What the dead device is replaced with.
    pub policy: ReplacementPolicy,
    /// Cost of one replacement in cents.
    pub unit_cost_cents: u64,
}

impl Default for ReplacementSpec {
    fn default() -> ReplacementSpec {
        ReplacementSpec { policy: ReplacementPolicy::Pristine, unit_cost_cents: 10_000 }
    }
}

/// A serving campaign as data: N devices × M policies × T traffic
/// profiles, each device queueing and serving its lane's request stream
/// day after day until the horizon (DESIGN.md §13).
#[derive(Clone, Debug)]
pub struct ServePlan {
    /// Base experiment seed; device `d` draws its workloads *and* its
    /// arrival streams from [`derive_cell_seed`]`(base_seed, lane_of(d))`.
    pub base_seed: u64,
    /// The system configuration every device ships with.
    pub config: SystemConfig,
    /// The policy axis (each policy sees the same devices and traffic).
    pub policies: Vec<PolicySpec>,
    /// The traffic axis (each profile sees the same devices and policies).
    pub traffic: Vec<TrafficSpec>,
    /// Device instances per (traffic × policy) cell.
    pub devices: usize,
    /// The workload catalogue requests are drawn from.
    pub suite: SuiteSpec,
    /// Serving horizon in days.
    pub horizon_days: u64,
    /// Traffic period: arrival streams repeat after this many days.
    pub pattern_days: u64,
    /// Device clock in Hz (sets the cycles-per-day budget).
    pub clock_hz: u64,
    /// Deployment years one serving day's wear models (DESIGN.md §13).
    pub years_per_day: f64,
    /// The aging calibration wear accumulates under.
    pub aging: CalibratedAging,
    /// Queue shedding/deferral thresholds.
    pub backpressure: BackpressureSpec,
    /// Replacement policy and cost for dead devices.
    pub replacement: ReplacementSpec,
    /// First-failure histogram bins over the horizon.
    pub histogram_bins: usize,
    /// Distinct workload/traffic lanes; device `d` serves lane
    /// `d % lanes`. `None` gives every device its own lane.
    pub lanes: Option<usize>,
    /// Devices per streaming shard of the weighting phase. Never affects
    /// results — only memory and scheduling.
    pub shard_devices: usize,
}

impl ServePlan {
    /// A serving fleet of 8 devices on `fabric` with the full mibench
    /// catalogue, the default diurnal + heavy-tailed traffic mix, and the
    /// default day/clock/backpressure/replacement model. Add policies
    /// with the chainable builders.
    pub fn new(base_seed: u64, fabric: Fabric) -> ServePlan {
        ServePlan {
            base_seed,
            config: SystemConfig::new(fabric),
            policies: Vec::new(),
            traffic: vec![TrafficSpec::diurnal(), TrafficSpec::heavy()],
            devices: 8,
            suite: SuiteSpec::full(),
            horizon_days: DEFAULT_HORIZON_DAYS,
            pattern_days: DEFAULT_PATTERN_DAYS,
            clock_hz: DEFAULT_CLOCK_HZ,
            years_per_day: DEFAULT_YEARS_PER_DAY,
            aging: CalibratedAging::default(),
            backpressure: BackpressureSpec::default(),
            replacement: ReplacementSpec::default(),
            histogram_bins: 20,
            lanes: None,
            shard_devices: DEFAULT_SHARD_DEVICES,
        }
    }

    /// Replaces the system configuration.
    pub fn config(mut self, config: SystemConfig) -> ServePlan {
        self.config = config;
        self
    }

    /// Adds a policy to the policy axis.
    pub fn policy(mut self, spec: PolicySpec) -> ServePlan {
        self.policies.push(spec);
        self
    }

    /// Adds several policies to the policy axis.
    pub fn policies(mut self, specs: impl IntoIterator<Item = PolicySpec>) -> ServePlan {
        self.policies.extend(specs);
        self
    }

    /// Replaces the traffic axis with a single profile.
    pub fn traffic(mut self, spec: TrafficSpec) -> ServePlan {
        self.traffic = vec![spec];
        self
    }

    /// Replaces the traffic axis.
    pub fn traffic_mix(mut self, specs: impl IntoIterator<Item = TrafficSpec>) -> ServePlan {
        self.traffic = specs.into_iter().collect();
        self
    }

    /// Sets the number of device instances per cell.
    pub fn devices(mut self, devices: usize) -> ServePlan {
        self.devices = devices;
        self
    }

    /// Replaces the workload catalogue.
    pub fn suite(mut self, suite: SuiteSpec) -> ServePlan {
        self.suite = suite;
        self
    }

    /// Sets the serving horizon in days.
    pub fn horizon_days(mut self, days: u64) -> ServePlan {
        self.horizon_days = days;
        self
    }

    /// Sets the traffic period in days.
    pub fn pattern_days(mut self, days: u64) -> ServePlan {
        self.pattern_days = days;
        self
    }

    /// Sets the device clock in Hz.
    pub fn clock_hz(mut self, hz: u64) -> ServePlan {
        self.clock_hz = hz;
        self
    }

    /// Sets the deployment years one serving day models.
    pub fn years_per_day(mut self, years: f64) -> ServePlan {
        self.years_per_day = years;
        self
    }

    /// Replaces the aging calibration.
    pub fn aging(mut self, aging: CalibratedAging) -> ServePlan {
        self.aging = aging;
        self
    }

    /// Replaces the backpressure thresholds.
    pub fn backpressure(mut self, spec: BackpressureSpec) -> ServePlan {
        self.backpressure = spec;
        self
    }

    /// Replaces the replacement policy and cost.
    pub fn replacement(mut self, spec: ReplacementSpec) -> ServePlan {
        self.replacement = spec;
        self
    }

    /// Sets the first-failure histogram resolution.
    pub fn histogram_bins(mut self, bins: usize) -> ServePlan {
        self.histogram_bins = bins;
        self
    }

    /// Sets the number of workload/traffic lanes.
    pub fn lanes(mut self, lanes: usize) -> ServePlan {
        self.lanes = Some(lanes);
        self
    }

    /// Sets the streaming shard size of the weighting phase.
    pub fn shard_devices(mut self, shard: usize) -> ServePlan {
        self.shard_devices = shard;
        self
    }

    /// The number of distinct lanes the plan resolves to.
    pub fn effective_lanes(&self) -> usize {
        self.lanes.unwrap_or(self.devices).min(self.devices)
    }

    /// The lane of device `device`.
    pub fn lane_of(&self, device: usize) -> usize {
        device % self.effective_lanes().max(1)
    }

    /// The derived seed of device `device` (its lane's seed).
    pub fn device_seed(&self, device: usize) -> u64 {
        derive_cell_seed(self.base_seed, self.lane_of(device) as u64)
    }

    /// The deployment years the serving horizon models
    /// (`horizon_days × years_per_day`).
    pub fn horizon_years(&self) -> f64 {
        self.horizon_days as f64 * self.years_per_day
    }

    /// Cycles in one serving day under the plan's clock.
    pub fn day_cycles(&self) -> u64 {
        self.clock_hz * SECONDS_PER_DAY
    }
}

/// Measured service costs of one workload on the fabric under one fault
/// mask: the request's cycle count and the per-FU stress it exerts.
#[derive(Clone, Debug)]
struct CgraCost {
    /// End-to-end service cycles (GPP phases + offloads).
    cycles: u64,
    /// Execution-weighted per-FU utilization of one service.
    util: UtilizationGrid,
    /// The raw tracker of one service, merged into the day tracker the
    /// backpressure rule reads.
    tracker: UtilizationTracker,
}

/// Per-workload service costs under one fault mask.
struct MaskCosts {
    /// `None` = no placement avoids the mask's dead FUs: a request for
    /// this workload kills the device.
    cgra: Vec<Option<CgraCost>>,
    /// GPP-only service cycles (the deferral path; mask-independent).
    gpp: Vec<u64>,
}

/// Measures one workload's fabric service under `mask`: a fresh system
/// per request shape, fed incrementally through the session interface in
/// [`SERVICE_SLICE_CYCLES`] slices (DESIGN.md §13). `Ok(None)` means the
/// allocation is exhausted — the device is dead.
fn measure_cgra(
    config: &SystemConfig,
    spec: &PolicySpec,
    mask: &FaultMask,
    workload: &Workload,
) -> Result<Option<CgraCost>, SystemError> {
    let mut system = System::new(config.clone(), spec.build());
    system.set_fault_mask(Some(mask.clone()));
    {
        let mut session = match system.session(workload.program()) {
            Ok(session) => session,
            Err(SystemError::AllocationExhausted { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        loop {
            match session.run_for(SERVICE_SLICE_CYCLES) {
                Ok(status) if status.is_running() => continue,
                Ok(_) => break,
                Err(SystemError::AllocationExhausted { .. }) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }
    assert!(
        workload.verify(system.cpu()).is_ok(),
        "oracle failure under {spec} with {} dead FUs",
        mask.dead_count()
    );
    let cycles = system.stats().total_cycles();
    Ok(Some(CgraCost {
        cycles,
        util: system.tracker().duty_cycles(cycles),
        tracker: system.tracker().clone(),
    }))
}

/// Lazy service-cost cache of one trajectory simulation. The fault mask
/// is monotone within a generation and replacement generations repeat the
/// same mask sequence (same duty history from a uniform wear offset), so
/// the dead-FU count keys each distinct mask exactly (DESIGN.md §13).
struct ServiceTable<'a> {
    config: &'a SystemConfig,
    spec: &'a PolicySpec,
    workloads: &'a [Workload],
    gpp: Option<Vec<u64>>,
    masks: BTreeMap<u32, MaskCosts>,
    simulated_services: u64,
}

impl<'a> ServiceTable<'a> {
    fn new(config: &'a SystemConfig, spec: &'a PolicySpec, workloads: &'a [Workload]) -> Self {
        ServiceTable {
            config,
            spec,
            workloads,
            gpp: None,
            masks: BTreeMap::new(),
            simulated_services: 0,
        }
    }

    /// The per-workload costs under `mask`, measuring them on first use.
    fn costs(&mut self, mask: &FaultMask) -> Result<&MaskCosts, SystemError> {
        let key = mask.dead_count();
        if !self.masks.contains_key(&key) {
            let gpp = match &self.gpp {
                Some(g) => g.clone(),
                None => {
                    let mut g = Vec::with_capacity(self.workloads.len());
                    for w in self.workloads {
                        let cpu = run_gpp_only(
                            w.program(),
                            self.config.mem_size,
                            self.config.timing,
                            self.config.max_steps,
                        )
                        .map_err(SystemError::Cpu)?;
                        g.push(cpu.cycles());
                    }
                    self.gpp = Some(g.clone());
                    g
                }
            };
            let mut cgra = Vec::with_capacity(self.workloads.len());
            for w in self.workloads {
                self.simulated_services += 1;
                cgra.push(measure_cgra(self.config, self.spec, mask, w)?);
            }
            self.masks.insert(key, MaskCosts { cgra, gpp });
        }
        Ok(self.masks.get(&key).expect("inserted above"))
    }
}

/// One simulated serving day's outcome, cacheable per
/// `(dead FU count, pattern day)` because backpressure state is day-local
/// (DESIGN.md §13).
#[derive(Clone, Debug)]
struct DayOutcome {
    served_cgra: u64,
    served_gpp: u64,
    shed: u64,
    latency: LatencyHistogram,
    /// The day's per-FU stress duty: busy cycles over day cycles.
    duty: UtilizationGrid,
    /// A request hit a workload with no placement: the device died.
    died: bool,
    /// Fraction of the day elapsed at death (valid when `died`).
    fatal_fraction: f64,
}

/// A request in flight: admitted, waiting for (or in) service.
struct Pending {
    finish: u64,
    request: u64,
    wait: u64,
    service: u64,
    deferred: bool,
}

/// `true` when the day tracker's busiest FU holds at least
/// `hot_share_pct` percent of all executions (integer math — exact).
fn fabric_is_hot(tracker: &UtilizationTracker, hot_share_pct: u32) -> bool {
    let executions = tracker.executions();
    if executions == 0 {
        return false;
    }
    let worst = tracker.exec_counts().iter().copied().max().unwrap_or(0);
    worst * 100 >= executions * hot_share_pct as u64
}

/// Delivers `event` to every observer with the day tracker as context.
fn emit(
    observers: &mut [Box<dyn Observer>],
    tracker: &UtilizationTracker,
    cycle: u64,
    event: &SimEvent,
) {
    let ctx = EventCtx { cycle, tracker };
    for observer in observers.iter_mut() {
        observer.on_event(&ctx, event);
    }
}

/// Simulates one device-day: a FIFO single-server queue over `arrivals`
/// with utilization-aware backpressure (DESIGN.md §13). Pure function of
/// its inputs — the day cache and the shard replay both rely on that.
///
/// Served requests stress the fabric for their service window at the
/// workload's execution-weighted utilization; deferred (GPP) services and
/// idle time exert none. Service tails past midnight are charged to the
/// day that admitted them; the queue drains at the day boundary.
fn run_service_day(
    arrivals: &[Arrival],
    costs: &MaskCosts,
    bp: &BackpressureSpec,
    day_cycles: u64,
    fabric: &Fabric,
    observers: &mut [Box<dyn Observer>],
) -> DayOutcome {
    let fu_count = (fabric.rows * fabric.cols) as usize;
    let mut day_tracker = UtilizationTracker::new(fabric);
    let mut busy = vec![0.0f64; fu_count];
    let mut in_flight: VecDeque<Pending> = VecDeque::new();
    let mut free_at = 0u64;
    let mut served_cgra = 0u64;
    let mut served_gpp = 0u64;
    let mut shed = 0u64;
    let mut latency = LatencyHistogram::new();
    let mut died = false;
    let mut fatal_fraction = 1.0;
    let watched = !observers.is_empty();
    for (i, arrival) in arrivals.iter().enumerate() {
        while in_flight.front().is_some_and(|p| p.finish <= arrival.cycle) {
            let done = in_flight.pop_front().expect("front exists");
            if watched {
                let event = SimEvent::RequestServed {
                    request: done.request,
                    wait_cycles: done.wait,
                    service_cycles: done.service,
                    deferred: done.deferred,
                };
                emit(observers, &day_tracker, done.finish, &event);
            }
        }
        let depth = in_flight.len() as u32;
        // Queue decisions are metered unconditionally (not gated on
        // `watched`): metrics must not depend on probe attachment
        // (DESIGN.md §16). Disabled, each is one relaxed atomic load.
        tracing::event!(tracing::Level::TRACE, "traffic.requests.arrived", "add" = 1);
        let Some(cost) = &costs.cgra[arrival.workload as usize] else {
            // The request needs a workload with no placement left: the
            // device is dead; the rest of the day's requests go unserved.
            died = true;
            fatal_fraction = arrival.cycle as f64 / day_cycles as f64;
            shed += (arrivals.len() - i) as u64;
            tracing::event!(
                tracing::Level::TRACE,
                "traffic.requests.shed",
                "add" = arrivals.len() - i,
            );
            if watched {
                let event = SimEvent::RequestShed { request: i as u64, queue_depth: depth };
                emit(observers, &day_tracker, arrival.cycle, &event);
            }
            break;
        };
        if bp.shed_depth > 0 && depth >= bp.shed_depth {
            shed += 1;
            tracing::event!(tracing::Level::TRACE, "traffic.requests.shed", "add" = 1);
            if watched {
                let event = SimEvent::RequestShed { request: i as u64, queue_depth: depth };
                emit(observers, &day_tracker, arrival.cycle, &event);
            }
            continue;
        }
        let hot = served_cgra + served_gpp >= bp.warmup_requests
            && fabric_is_hot(&day_tracker, bp.hot_share_pct);
        let deferred = hot && depth >= bp.defer_depth;
        let service = if deferred { costs.gpp[arrival.workload as usize] } else { cost.cycles };
        let start = free_at.max(arrival.cycle);
        let wait = start - arrival.cycle;
        let finish = start + service;
        free_at = finish;
        latency.record(wait + service);
        tracing::event!(tracing::Level::TRACE, "traffic.latency.cycles", "record" = wait + service);
        tracing::event!(tracing::Level::TRACE, "traffic.queue.depth", "set" = depth + 1);
        if deferred {
            served_gpp += 1;
            tracing::event!(tracing::Level::TRACE, "traffic.requests.served_gpp", "add" = 1);
        } else {
            served_cgra += 1;
            tracing::event!(tracing::Level::TRACE, "traffic.requests.served_cgra", "add" = 1);
            for (b, &u) in busy.iter_mut().zip(cost.util.values()) {
                *b += u * cost.cycles as f64;
            }
            day_tracker.merge(&cost.tracker);
        }
        if watched {
            let event = SimEvent::RequestArrived {
                request: i as u64,
                workload: arrival.workload,
                queue_depth: depth + 1,
            };
            emit(observers, &day_tracker, arrival.cycle, &event);
        }
        in_flight.push_back(Pending { finish, request: i as u64, wait, service, deferred });
    }
    let mut end_cycle = day_cycles;
    while let Some(done) = in_flight.pop_front() {
        end_cycle = end_cycle.max(done.finish);
        if watched {
            let event = SimEvent::RequestServed {
                request: done.request,
                wait_cycles: done.wait,
                service_cycles: done.service,
                deferred: done.deferred,
            };
            emit(observers, &day_tracker, done.finish, &event);
        }
    }
    if watched {
        let ctx = EventCtx { cycle: end_cycle, tracker: &day_tracker };
        for observer in observers.iter_mut() {
            observer.on_finish(&ctx);
        }
    }
    let denom = day_cycles as f64;
    let values: Vec<f64> = busy.iter().map(|b| (b / denom).min(1.0)).collect();
    DayOutcome {
        served_cgra,
        served_gpp,
        shed,
        latency,
        duty: UtilizationGrid::from_values(fabric.rows, fabric.cols, values),
        died,
        fatal_fraction,
    }
}

/// One device generation inside a serving trajectory, in service years
/// relative to its own deployment (pre-aging excluded).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Generation {
    /// Service years until death, `None` if alive at the horizon.
    death_years: Option<f64>,
    /// Service years until the first FU failure, if any failed.
    first_failure_years: Option<f64>,
}

/// One (traffic × policy × lane) equivalence class's full serving
/// history: every class member reproduces it exactly, so phase 2 only
/// weights it by the member count (DESIGN.md §13).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ServeTrajectory {
    /// Device generations in deployment order (the last is censored).
    generations: Vec<Generation>,
    /// End-to-end latency of every served request.
    latency: LatencyHistogram,
    /// Requests served on the fabric.
    served_cgra: u64,
    /// Requests deferred to the GPP by backpressure.
    served_gpp: u64,
    /// Requests shed (queue full, or death-day remainder).
    shed: u64,
    /// Requests that arrived over the horizon.
    total_requests: u64,
    /// Devices replaced after dying.
    replacements: u64,
    /// Distinct device-days actually simulated (the rest replayed the
    /// day cache).
    simulated_days: u64,
    /// Fabric service measurements actually run.
    simulated_services: u64,
}

/// A replacement device per the plan's [`ReplacementPolicy`], plus its
/// pre-age offset in years.
///
/// # Panics
///
/// Panics when refurbished pre-aging alone crosses end of life — a
/// plan-construction bug ([`ReplacementPolicy::Refurbished`] documents
/// the `0..100` bound).
fn replacement_device(plan: &ServePlan) -> (DeviceLifetime, f64) {
    let mut life = DeviceLifetime::new(&plan.config.fabric, plan.aging, true);
    match plan.replacement.policy {
        ReplacementPolicy::Pristine => (life, 0.0),
        ReplacementPolicy::Refurbished { age_pct } => {
            let years = plan.aging.anchor_years * age_pct as f64 / 100.0;
            let fabric = &plan.config.fabric;
            let uniform = UtilizationGrid::from_values(
                fabric.rows,
                fabric.cols,
                vec![1.0; (fabric.rows * fabric.cols) as usize],
            );
            let failures = life.advance_mission(&uniform, years);
            assert!(
                failures.is_empty(),
                "refurbished pre-age of {age_pct}% crosses end of life before deployment"
            );
            (life, years)
        }
    }
}

/// Simulates one (traffic × policy × lane) class's serving deployment on
/// the reference path: generate (or replay) the day's arrivals, run the
/// queue against the current mask's measured costs, fold the day's duty
/// into wear, inject failures, replace the device when it dies
/// (DESIGN.md §13). Day outcomes are cached per
/// `(dead FU count, pattern day)`, so the cost is bounded by distinct
/// mask states — not by the horizon.
fn simulate_serving(
    plan: &ServePlan,
    spec: &PolicySpec,
    traffic: &TrafficSpec,
    workloads: &[Workload],
    lane: usize,
) -> Result<ServeTrajectory, SystemError> {
    let stream_seed = derive_cell_seed(plan.base_seed, lane as u64);
    let day_cycles = plan.day_cycles();
    let mut table = ServiceTable::new(&plan.config, spec, workloads);
    let mut pattern: Vec<Option<Vec<Arrival>>> = vec![None; plan.pattern_days as usize];
    let mut day_cache: BTreeMap<(u32, u64), DayOutcome> = BTreeMap::new();
    let mut life = DeviceLifetime::new(&plan.config.fabric, plan.aging, true);
    let mut pre_age = 0.0f64;
    let mut generation_start = 0u64;
    let mut out = ServeTrajectory {
        generations: Vec::new(),
        latency: LatencyHistogram::new(),
        served_cgra: 0,
        served_gpp: 0,
        shed: 0,
        total_requests: 0,
        replacements: 0,
        simulated_days: 0,
        simulated_services: 0,
    };
    for day in 0..plan.horizon_days {
        let pattern_day = day % plan.pattern_days;
        let arrivals = pattern[pattern_day as usize].get_or_insert_with(|| {
            day_traffic(traffic, stream_seed, pattern_day, plan.clock_hz, workloads.len() as u32)
        });
        let key = (life.fault_mask().dead_count(), pattern_day);
        let outcome = match day_cache.get(&key) {
            Some(outcome) => outcome.clone(),
            None => {
                let costs = table.costs(life.fault_mask())?;
                let outcome = run_service_day(
                    arrivals,
                    costs,
                    &plan.backpressure,
                    day_cycles,
                    &plan.config.fabric,
                    &mut [],
                );
                out.simulated_days += 1;
                day_cache.insert(key, outcome.clone());
                outcome
            }
        };
        out.total_requests += arrivals.len() as u64;
        out.served_cgra += outcome.served_cgra;
        out.served_gpp += outcome.served_gpp;
        out.shed += outcome.shed;
        out.latency.merge(&outcome.latency);
        if outcome.died {
            let days_alive = (day - generation_start) as f64 + outcome.fatal_fraction;
            out.generations.push(Generation {
                death_years: Some(days_alive * plan.years_per_day),
                first_failure_years: life.first_failure_years().map(|t| (t - pre_age).max(0.0)),
            });
            out.replacements += 1;
            (life, pre_age) = replacement_device(plan);
            generation_start = day + 1;
            continue;
        }
        life.advance_mission(&outcome.duty, plan.years_per_day);
    }
    out.generations.push(Generation {
        death_years: None,
        first_failure_years: life.first_failure_years().map(|t| (t - pre_age).max(0.0)),
    });
    out.simulated_services = table.simulated_services;
    Ok(out)
}

/// One (traffic × policy) cell's streaming aggregate: a merge monoid, so
/// shard partials fold exactly regardless of the split (DESIGN.md §13).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ServeAccum {
    fleet: FleetAccum,
    latency: LatencyHistogram,
    served_cgra: u64,
    served_gpp: u64,
    shed: u64,
    total_requests: u64,
    replacements: u64,
}

impl ServeAccum {
    fn new() -> ServeAccum {
        ServeAccum {
            fleet: FleetAccum::new(),
            latency: LatencyHistogram::new(),
            served_cgra: 0,
            served_gpp: 0,
            shed: 0,
            total_requests: 0,
            replacements: 0,
        }
    }

    /// Folds `count` devices sharing `trajectory` into the aggregate.
    /// Every device generation enters the fleet accumulator as one
    /// observation, censored at the campaign horizon.
    fn observe_class(&mut self, trajectory: &ServeTrajectory, count: u64) {
        for g in &trajectory.generations {
            self.fleet.observe_weighted(g.death_years, g.first_failure_years, count);
        }
        self.latency.add_scaled(&trajectory.latency, count);
        self.served_cgra += trajectory.served_cgra * count;
        self.served_gpp += trajectory.served_gpp * count;
        self.shed += trajectory.shed * count;
        self.total_requests += trajectory.total_requests * count;
        self.replacements += trajectory.replacements * count;
    }

    /// Absorbs `other`: the monoid operation.
    fn merge(&mut self, other: &ServeAccum) {
        self.fleet.merge(&other.fleet);
        self.latency.merge(&other.latency);
        self.served_cgra += other.served_cgra;
        self.served_gpp += other.served_gpp;
        self.shed += other.shed;
        self.total_requests += other.total_requests;
        self.replacements += other.replacements;
    }
}

/// Weights one shard of devices into one (traffic × policy) cell's
/// partial aggregate. Class members are byte-identical, so the "replay"
/// is a weighted fold of the class trajectory (DESIGN.md §13).
fn run_serve_shard(
    plan: &ServePlan,
    trajectories: &[ServeTrajectory],
    cell: usize,
    shard: usize,
) -> ServeAccum {
    let lanes = plan.effective_lanes().max(1);
    let start = shard * plan.shard_devices;
    let end = ((shard + 1) * plan.shard_devices).min(plan.devices);
    let mut members = vec![0u64; lanes];
    for device in start..end {
        members[device % lanes] += 1;
    }
    let mut accum = ServeAccum::new();
    for (lane, &count) in members.iter().enumerate() {
        if count > 0 {
            accum.observe_class(&trajectories[cell * lanes + lane], count);
        }
    }
    accum
}

/// Serving checkpoint format version. v2 added the metrics registry
/// (DESIGN.md §16).
const SERVE_CHECKPOINT_VERSION: u32 = 2;

/// Serving checkpoint file magic.
const SERVE_CHECKPOINT_MAGIC: &str = "uaware-serve-checkpoint";

/// A serving campaign's persisted mid-run state, mirroring the fleet
/// checkpoint (DESIGN.md §12, §13): phase-1 trajectories plus the merged
/// partials of every *completed* shard — interrupted shards re-run on
/// resume, which is what keeps resume byte-identical.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ServeCheckpoint {
    /// File magic: [`SERVE_CHECKPOINT_MAGIC`].
    magic: String,
    /// Format version: [`SERVE_CHECKPOINT_VERSION`].
    version: u32,
    /// FNV-1a hash of the plan's debug form; a resume under a different
    /// plan (or shard split) is rejected.
    fingerprint: u64,
    /// Phase-1 trajectories, cell-major
    /// (`(traffic * policies + policy) * lanes + lane`).
    trajectories: Vec<ServeTrajectory>,
    /// Completed shard indices, always the prefix `0..k`.
    completed_shards: Vec<usize>,
    /// Per-cell streaming aggregates over the completed shards.
    accums: Vec<ServeAccum>,
    /// The metrics registry folded over the phase-1 trajectories (empty
    /// unless [`CampaignOptions::collect_metrics`] was set). The phase-2
    /// shard fold is pure arithmetic and emits nothing, so this is the
    /// campaign's whole registry (DESIGN.md §16).
    metrics: Registry,
}

/// The plan fingerprint a serving checkpoint is bound to.
fn serve_fingerprint(plan: &ServePlan) -> u64 {
    fnv1a64(format!("v{SERVE_CHECKPOINT_VERSION}:{plan:?}").as_bytes())
}

/// Atomically persists `checkpoint` (write-then-rename).
///
/// # Panics
///
/// Panics on IO failure — losing a checkpoint silently would defeat it.
fn save_serve_checkpoint(path: &Path, checkpoint: &ServeCheckpoint) {
    let json = serde_json::to_string(checkpoint).expect("checkpoint serializes");
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json).unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename to {}: {e}", path.display()));
}

/// Loads and validates a serving checkpoint, if one exists at `path`.
///
/// # Panics
///
/// Panics on unreadable/corrupt files, version mismatches, a fingerprint
/// of a different plan, or a non-prefix shard set.
fn load_serve_checkpoint(path: &Path, plan: &ServePlan) -> Option<ServeCheckpoint> {
    if !path.exists() {
        return None;
    }
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read checkpoint {}: {e}", path.display()));
    let checkpoint: ServeCheckpoint = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("corrupt checkpoint {}: {e:?}", path.display()));
    assert_eq!(
        checkpoint.magic,
        SERVE_CHECKPOINT_MAGIC,
        "not a serving checkpoint: {}",
        path.display()
    );
    assert_eq!(
        checkpoint.version,
        SERVE_CHECKPOINT_VERSION,
        "checkpoint {} has unsupported version",
        path.display()
    );
    assert_eq!(
        checkpoint.fingerprint,
        serve_fingerprint(plan),
        "checkpoint {} belongs to a different plan",
        path.display()
    );
    assert!(
        checkpoint.completed_shards.iter().copied().eq(0..checkpoint.completed_shards.len()),
        "checkpoint {} has a non-prefix shard set",
        path.display()
    );
    Some(checkpoint)
}

/// One (traffic × policy) cell of a serving report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeCell {
    /// Traffic spec string.
    pub traffic: String,
    /// Policy spec string.
    pub policy: String,
    /// Fleet lifetime statistics over device *generations* (replacements
    /// included), censored at the campaign horizon.
    pub stats: FleetStats,
    /// Median end-to-end request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end request latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end request latency in milliseconds.
    pub p99_ms: f64,
    /// Requests served on the fabric.
    pub served_cgra: u64,
    /// Requests deferred to the GPP by backpressure.
    pub served_gpp: u64,
    /// Requests shed (queue full, or death-day remainder).
    pub shed: u64,
    /// Requests that arrived over the horizon.
    pub total_requests: u64,
    /// `shed / total_requests` (`0` when no requests arrived).
    pub shed_rate: f64,
    /// Devices replaced after dying, across the whole cell.
    pub replacements: u64,
    /// Replacement spend in cents (`replacements × unit cost`).
    pub replacement_cost_cents: u64,
    /// Distinct device-days actually simulated across the cell's lanes.
    pub simulated_days: u64,
    /// Fabric service measurements actually run across the cell's lanes.
    pub simulated_services: u64,
}

/// The serializable result of [`run_serving`] (`results/serving.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Base experiment seed.
    pub base_seed: u64,
    /// Fabric rows.
    pub rows: u32,
    /// Fabric columns.
    pub cols: u32,
    /// Workload-suite label.
    pub suite: String,
    /// Devices per cell.
    pub devices: usize,
    /// Distinct workload/traffic lanes.
    pub lanes: usize,
    /// Serving horizon in days.
    pub horizon_days: u64,
    /// Traffic period in days.
    pub pattern_days: u64,
    /// Device clock in Hz.
    pub clock_hz: u64,
    /// Deployment years one serving day models.
    pub years_per_day: f64,
    /// Deployment years the horizon models.
    pub horizon_years: f64,
    /// Per-cell aggregates, traffic-major then policy, in plan order.
    pub cells: Vec<ServeCell>,
}

impl ServeReport {
    /// The cell for `traffic` × `policy` (their spec strings).
    pub fn cell(&self, traffic: &str, policy: &str) -> Option<&ServeCell> {
        self.cells.iter().find(|c| c.traffic == traffic && c.policy == policy)
    }
}

/// What [`run_serving_campaign`] came back with.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeStatus {
    /// The campaign ran to the horizon; here is the full report.
    Complete(Box<ServeReport>),
    /// The campaign stopped early at a shard boundary
    /// ([`CampaignOptions::stop_after_shards`]); re-run with the same
    /// checkpoint path to continue.
    Paused {
        /// Shards completed so far (also the resume point).
        completed_shards: usize,
        /// Total shards in the campaign.
        total_shards: usize,
    },
}

/// Runs every (traffic × policy × device) cell of `plan` with
/// checkpoint/resume and early-stop control, sharded across `jobs`
/// workers (`0` = all cores, `1` = sequential). Like
/// [`run_fleet_campaign`](crate::fleet::run_fleet_campaign), the report
/// is **byte-identical for every worker count, every shard split, and
/// every kill/resume point**: trajectories are deterministic per class,
/// shard weighting is a pure function of (plan, trajectories), and the
/// per-cell aggregates merge through exact integer/multiset monoids in
/// shard order.
///
/// # Errors
///
/// A movement policy on a movement-less configuration is rejected before
/// anything runs; otherwise the error of the lowest-indexed failing cell
/// is returned. ([`SystemError::AllocationExhausted`] is *not* an error
/// here — it is a device death, part of the result.)
///
/// # Panics
///
/// Panics on plan-construction bugs — an empty traffic axis, an invalid
/// [`TrafficSpec`], a zero `horizon_days`/`pattern_days`/`clock_hz`/
/// `shard_devices`, a non-positive `years_per_day`, a refurbished
/// `age_pct` outside `0..100` — and on checkpoint IO failures or a
/// checkpoint that does not match the plan.
pub fn run_serving_campaign(
    plan: &ServePlan,
    jobs: usize,
    options: &CampaignOptions,
) -> Result<ServeStatus, SystemError> {
    assert!(!plan.traffic.is_empty(), "a serving campaign needs at least one traffic profile");
    for spec in &plan.traffic {
        spec.validate().unwrap_or_else(|e| panic!("invalid traffic spec {spec}: {e}"));
    }
    assert!(plan.horizon_days > 0, "horizon_days must be positive");
    assert!(plan.pattern_days > 0, "pattern_days must be positive");
    assert!(plan.clock_hz > 0, "clock_hz must be positive");
    assert!(
        plan.years_per_day > 0.0 && plan.years_per_day.is_finite(),
        "years_per_day must be positive and finite, got {}",
        plan.years_per_day
    );
    assert!(plan.shard_devices > 0, "shard_devices must be positive");
    assert!(
        plan.devices == 0 || plan.effective_lanes() > 0,
        "a populated fleet needs at least one lane"
    );
    if let ReplacementPolicy::Refurbished { age_pct } = plan.replacement.policy {
        assert!(age_pct < 100, "refurbished age_pct must be below 100, got {age_pct}");
    }
    for spec in &plan.policies {
        if spec.needs_movement() && !plan.config.movement_hardware {
            return Err(BuildError::MovementHardwareAbsent { policy: spec.to_string() }.into());
        }
    }
    let pool = if jobs == 0 { ThreadPool::with_default_workers() } else { ThreadPool::new(jobs) };
    let lanes = plan.effective_lanes().max(1);
    let cell_count = plan.traffic.len() * plan.policies.len();
    let total_shards = plan.devices.div_ceil(plan.shard_devices);

    // Phase 1 (or resume): one reference serving simulation per
    // (traffic × policy × lane) class.
    let resumed = options.checkpoint.as_deref().and_then(|path| load_serve_checkpoint(path, plan));
    let (trajectories, mut completed, mut accums, metrics) = match resumed {
        Some(ck) => (ck.trajectories, ck.completed_shards.len(), ck.accums, ck.metrics),
        None => {
            let _phase = span!(Level::INFO, "serve.trajectories").entered();
            let lane_workloads: Vec<Vec<Workload>> = pool
                .par_map((0..lanes).collect(), |_, lane| {
                    plan.suite.workloads(derive_cell_seed(plan.base_seed, lane as u64))
                });
            let cells: Vec<(usize, usize, usize)> = (0..plan.traffic.len())
                .flat_map(|t| {
                    (0..plan.policies.len()).flat_map(move |p| (0..lanes).map(move |l| (t, p, l)))
                })
                .collect();
            let collect_metrics = options.collect_metrics;
            let outcomes: Vec<(Result<ServeTrajectory, SystemError>, Registry)> =
                pool.par_map(cells, |_, (t, p, l)| {
                    let work = || {
                        simulate_serving(
                            plan,
                            &plan.policies[p],
                            &plan.traffic[t],
                            &lane_workloads[l],
                            l,
                        )
                    };
                    if collect_metrics {
                        obs::collect(work)
                    } else {
                        (work(), Registry::new())
                    }
                });
            let mut trajectories = Vec::with_capacity(outcomes.len());
            let mut metrics = Registry::new();
            for (outcome, registry) in outcomes {
                trajectories.push(outcome?);
                metrics.merge(&registry);
            }
            let fresh = (trajectories, 0, vec![ServeAccum::new(); cell_count], metrics);
            if let Some(path) = options.checkpoint.as_deref() {
                let _save = span!(Level::INFO, "serve.checkpoint").entered();
                save_serve_checkpoint(
                    path,
                    &ServeCheckpoint {
                        magic: SERVE_CHECKPOINT_MAGIC.to_string(),
                        version: SERVE_CHECKPOINT_VERSION,
                        fingerprint: serve_fingerprint(plan),
                        trajectories: fresh.0.clone(),
                        completed_shards: Vec::new(),
                        accums: fresh.2.clone(),
                        metrics: fresh.3.clone(),
                    },
                );
            }
            fresh
        }
    };

    // Phase 2: stream device shards through the weighted class fold,
    // merging each wave's partials in (shard, cell) order.
    let wave_shards = if options.checkpoint.is_some() {
        options.checkpoint_every_shards.max(1)
    } else {
        usize::MAX
    };
    while completed < total_shards {
        if options.stop_after_shards.is_some_and(|stop| completed >= stop) {
            return Ok(ServeStatus::Paused { completed_shards: completed, total_shards });
        }
        let mut wave_end = completed.saturating_add(wave_shards).min(total_shards);
        if let Some(stop) = options.stop_after_shards {
            wave_end = wave_end.min(stop.max(completed + 1));
        }
        let _wave = span!(Level::INFO, "serve.shards").entered();
        let cells: Vec<(usize, usize)> =
            (completed..wave_end).flat_map(|s| (0..cell_count).map(move |c| (s, c))).collect();
        let results: Vec<ServeAccum> =
            pool.par_map(cells.clone(), |_, (s, c)| run_serve_shard(plan, &trajectories, c, s));
        for (partial, (_, c)) in results.into_iter().zip(cells) {
            accums[c].merge(&partial);
        }
        completed = wave_end;
        if let Some(path) = options.checkpoint.as_deref() {
            let _save = span!(Level::INFO, "serve.checkpoint").entered();
            save_serve_checkpoint(
                path,
                &ServeCheckpoint {
                    magic: SERVE_CHECKPOINT_MAGIC.to_string(),
                    version: SERVE_CHECKPOINT_VERSION,
                    fingerprint: serve_fingerprint(plan),
                    trajectories: trajectories.clone(),
                    completed_shards: (0..completed).collect(),
                    accums: accums.clone(),
                    metrics: metrics.clone(),
                },
            );
        }
    }

    let to_ms = |cycles: u64| cycles as f64 * 1_000.0 / plan.clock_hz as f64;
    let mut cells = Vec::with_capacity(cell_count);
    for (t, traffic) in plan.traffic.iter().enumerate() {
        for (p, policy) in plan.policies.iter().enumerate() {
            let cell = t * plan.policies.len() + p;
            let accum = &accums[cell];
            let lane_slice = &trajectories[cell * lanes..(cell + 1) * lanes];
            cells.push(ServeCell {
                traffic: traffic.to_string(),
                policy: policy.to_string(),
                stats: accum.fleet.stats(plan.horizon_years(), plan.histogram_bins),
                p50_ms: to_ms(accum.latency.percentile_cycles(0.50)),
                p95_ms: to_ms(accum.latency.percentile_cycles(0.95)),
                p99_ms: to_ms(accum.latency.percentile_cycles(0.99)),
                served_cgra: accum.served_cgra,
                served_gpp: accum.served_gpp,
                shed: accum.shed,
                total_requests: accum.total_requests,
                shed_rate: if accum.total_requests == 0 {
                    0.0
                } else {
                    accum.shed as f64 / accum.total_requests as f64
                },
                replacements: accum.replacements,
                replacement_cost_cents: accum.replacements * plan.replacement.unit_cost_cents,
                simulated_days: lane_slice.iter().map(|t| t.simulated_days).sum(),
                simulated_services: lane_slice.iter().map(|t| t.simulated_services).sum(),
            });
        }
    }

    // Like the fleet campaign, metrics reach the global accumulator only
    // on completion, so a stop/resume pair folds exactly once
    // (DESIGN.md §16).
    if options.collect_metrics {
        obs::global::fold(&metrics);
    }

    Ok(ServeStatus::Complete(Box::new(ServeReport {
        base_seed: plan.base_seed,
        rows: plan.config.fabric.rows,
        cols: plan.config.fabric.cols,
        suite: plan.suite.name.clone(),
        devices: plan.devices,
        lanes,
        horizon_days: plan.horizon_days,
        pattern_days: plan.pattern_days,
        clock_hz: plan.clock_hz,
        years_per_day: plan.years_per_day,
        horizon_years: plan.horizon_years(),
        cells,
    })))
}

/// Runs every (traffic × policy × device) cell of `plan`, sharded across
/// `jobs` workers (`0` = all cores, `1` = sequential), without
/// checkpointing. The report is byte-identical for every worker count and
/// shard split — see [`run_serving_campaign`].
///
/// # Errors
///
/// See [`run_serving_campaign`].
///
/// # Panics
///
/// See [`run_serving_campaign`].
pub fn run_serving(plan: &ServePlan, jobs: usize) -> Result<ServeReport, SystemError> {
    match run_serving_campaign(plan, jobs, &CampaignOptions::default())? {
        ServeStatus::Complete(report) => Ok(*report),
        ServeStatus::Paused { .. } => unreachable!("no stop was requested"),
    }
}

/// A one-day serving summary, the scalar half of what
/// [`probe_service_day`] returns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DayServeReport {
    /// Requests that arrived over the day.
    pub requests: u64,
    /// Requests served on the fabric.
    pub served_cgra: u64,
    /// Requests deferred to the GPP by backpressure.
    pub served_gpp: u64,
    /// Requests shed.
    pub shed: u64,
    /// Median end-to-end latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency in milliseconds.
    pub p99_ms: f64,
}

/// Runs one pristine device-day of `plan` under observation: `lane`'s
/// arrival stream for `day` flows through the queue with the requested
/// [`ProbeSpec`] observers attached — the request-level
/// [`SimEvent`] stream (`RequestArrived`/`RequestServed`/`RequestShed`)
/// plus queue-depth probes, exactly as the campaign path simulates it
/// (DESIGN.md §13).
///
/// # Errors
///
/// Propagates simulation errors from the service-cost measurements.
///
/// # Panics
///
/// Panics on the same plan-construction bugs as [`run_serving_campaign`]
/// and on a `lane` outside the plan's lanes.
pub fn probe_service_day(
    plan: &ServePlan,
    policy: &PolicySpec,
    traffic: &TrafficSpec,
    lane: usize,
    day: u64,
    probes: &[ProbeSpec],
) -> Result<(DayServeReport, Vec<ProbeReport>), SystemError> {
    assert!(lane < plan.effective_lanes().max(1), "lane {lane} outside the plan's lanes");
    assert!(plan.pattern_days > 0, "pattern_days must be positive");
    let workloads = plan.suite.workloads(derive_cell_seed(plan.base_seed, lane as u64));
    let mut table = ServiceTable::new(&plan.config, policy, &workloads);
    let mask = FaultMask::healthy(&plan.config.fabric);
    let costs = table.costs(&mask)?;
    let arrivals = day_traffic(
        traffic,
        derive_cell_seed(plan.base_seed, lane as u64),
        day % plan.pattern_days,
        plan.clock_hz,
        workloads.len() as u32,
    );
    let mut observers: Vec<Box<dyn Observer>> = probes.iter().map(|p| p.build()).collect();
    let outcome = run_service_day(
        &arrivals,
        costs,
        &plan.backpressure,
        plan.day_cycles(),
        &plan.config.fabric,
        &mut observers,
    );
    let to_ms = |cycles: u64| cycles as f64 * 1_000.0 / plan.clock_hz as f64;
    let report = DayServeReport {
        requests: arrivals.len() as u64,
        served_cgra: outcome.served_cgra,
        served_gpp: outcome.served_gpp,
        shed: outcome.shed,
        p50_ms: to_ms(outcome.latency.percentile_cycles(0.50)),
        p95_ms: to_ms(outcome.latency.percentile_cycles(0.95)),
        p99_ms: to_ms(outcome.latency.percentile_cycles(0.99)),
    };
    Ok((report, observers.iter().filter_map(|o| o.report()).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_specs_round_trip_and_validate() {
        for spec in [
            TrafficSpec::steady(),
            TrafficSpec::diurnal(),
            TrafficSpec::heavy(),
            TrafficSpec::Steady { per_hour: 42 },
            TrafficSpec::Diurnal { per_hour: 10, swing_pct: 100 },
            TrafficSpec::Heavy { per_hour: 7, alpha_milli: 1001 },
        ] {
            let parsed: TrafficSpec = spec.to_string().parse().expect("round trip");
            assert_eq!(parsed, spec);
        }
        assert_eq!("steady".parse::<TrafficSpec>().unwrap(), TrafficSpec::steady());
        assert_eq!("diurnal".parse::<TrafficSpec>().unwrap(), TrafficSpec::diurnal());
        assert_eq!("heavy".parse::<TrafficSpec>().unwrap(), TrafficSpec::heavy());
        assert_eq!(
            "diurnal@swing-50".parse::<TrafficSpec>().unwrap(),
            TrafficSpec::Diurnal { per_hour: DEFAULT_PER_HOUR, swing_pct: 50 }
        );
        for bad in [
            "surge",
            "steady@rph-0",
            "steady@swing-10",
            "diurnal@rph-5+swing-101",
            "heavy@alpha-1000",
            "heavy@swing-10",
            "steady@rph",
            "steady@rph-x",
            "diurnal@tide-3",
        ] {
            assert!(bad.parse::<TrafficSpec>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn arrival_streams_are_deterministic_and_rate_matched() {
        let spec = TrafficSpec::Steady { per_hour: 3_600 };
        let a = day_traffic(&spec, 0xDAC2020, 0, 1_000, 4);
        let b = day_traffic(&spec, 0xDAC2020, 0, 1_000, 4);
        assert_eq!(a, b, "same (spec, seed, day) must reproduce the stream");
        let c = day_traffic(&spec, 0xDAC2020, 1, 1_000, 4);
        assert_ne!(a, c, "different days draw different streams");
        // 3 600/h over a day is 86 400 expected arrivals.
        assert!((80_000..93_000).contains(&a.len()), "got {} arrivals", a.len());
        assert!(a.windows(2).all(|w| w[0].cycle <= w[1].cycle), "arrivals are ordered");
        assert!(a.iter().all(|r| r.workload < 4));
        let day_cycles = 1_000 * SECONDS_PER_DAY;
        assert!(a.iter().all(|r| r.cycle < day_cycles));
    }

    #[test]
    fn diurnal_arrivals_peak_at_midday() {
        let spec = TrafficSpec::Diurnal { per_hour: 1_200, swing_pct: 80 };
        let arrivals = day_traffic(&spec, 7, 0, 1_000, 1);
        let day_cycles = 1_000 * SECONDS_PER_DAY;
        let sixth = day_cycles / 6;
        let night: usize = arrivals.iter().filter(|r| r.cycle < sixth).count();
        let midday = arrivals
            .iter()
            .filter(|r| r.cycle >= 2 * sixth + sixth / 2 && r.cycle < 3 * sixth + sixth / 2)
            .count();
        assert!(
            midday as f64 > 2.0 * night as f64,
            "midday sixth ({midday}) must dwarf the midnight sixth ({night})"
        );
    }

    #[test]
    fn heavy_tailed_arrivals_have_giant_gaps() {
        let spec = TrafficSpec::Heavy { per_hour: 1_200, alpha_milli: 1_200 };
        let arrivals = day_traffic(&spec, 7, 0, 1_000, 1);
        let mean_gap = 3_600.0 * 1_000.0 / 1_200.0;
        let max_gap = arrivals.windows(2).map(|w| w[1].cycle - w[0].cycle).max().unwrap();
        assert!(
            max_gap as f64 > 20.0 * mean_gap,
            "α=1.2 must produce gaps far beyond the mean ({max_gap} vs {mean_gap})"
        );
    }

    #[test]
    fn histogram_buckets_are_exact_then_logarithmic() {
        for v in 0..8u64 {
            assert_eq!(bucket_floor(bucket_of(v)), v, "small values are exact");
        }
        for v in [8u64, 100, 1_000, 65_535, 1 << 40] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v, "floor {floor} must not exceed {v}");
            assert!(v - floor <= v / 8, "bucket of {v} is wider than 12.5% ({floor})");
        }
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 100, 200, 100_000] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.percentile_cycles(0.0), 1);
        assert_eq!(h.percentile_cycles(0.5), 4);
        assert_eq!(h.percentile_cycles(1.0), bucket_floor(bucket_of(100_000)));
        assert_eq!(LatencyHistogram::new().percentile_cycles(0.99), 0);
    }

    #[test]
    fn histogram_merge_equals_scaled_add() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [5u64, 50, 500] {
            a.record(v);
            b.record(v * 3);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut tripled = LatencyHistogram::new();
        tripled.add_scaled(&merged, 3);
        assert_eq!(tripled.total(), 3 * merged.total());
        assert_eq!(
            tripled.percentile_cycles(0.5),
            merged.percentile_cycles(0.5),
            "scaling preserves quantiles"
        );
    }

    /// A deliberately tiny serving plan that stays fast in debug builds:
    /// one short workload, a slow clock (few arrivals per day), two days.
    fn mini_plan() -> ServePlan {
        ServePlan::new(7, Fabric::be())
            .policy(PolicySpec::Baseline)
            .suite(SuiteSpec::subset("crc", vec![1]))
            .traffic(TrafficSpec::Steady { per_hour: 40 })
            .devices(3)
            .lanes(1)
            .clock_hz(1_000)
            .horizon_days(2)
            .pattern_days(1)
    }

    #[test]
    fn serving_conserves_requests_and_weights_lanes() {
        let report = run_serving(&mini_plan(), 1).unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.traffic, "steady@rph-40");
        assert_eq!(cell.policy, "baseline");
        assert_eq!(cell.served_cgra + cell.served_gpp + cell.shed, cell.total_requests);
        assert!(cell.total_requests > 0, "two days of traffic must produce requests");
        // 3 devices share 1 lane: totals are 3× the class trajectory.
        assert_eq!(cell.total_requests % 3, 0);
        assert_eq!(cell.stats.devices as u64, 3 * (cell.replacements / 3 + 1));
        assert!(cell.p50_ms > 0.0);
        assert!(cell.p99_ms >= cell.p95_ms && cell.p95_ms >= cell.p50_ms);
    }

    #[test]
    fn serving_is_invariant_under_jobs_and_shards() {
        let reference = run_serving(&mini_plan(), 1).unwrap();
        let sharded = run_serving(&mini_plan().shard_devices(1), 2).unwrap();
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "jobs and shard splits must not change a byte"
        );
    }

    #[test]
    fn probe_service_day_reports_queue_depth() {
        let plan = mini_plan();
        let probes = vec!["queue-depth@every-1000000".parse::<ProbeSpec>().unwrap()];
        let (day, reports) = probe_service_day(
            &plan,
            &PolicySpec::Baseline,
            &TrafficSpec::Steady { per_hour: 40 },
            0,
            0,
            &probes,
        )
        .unwrap();
        assert_eq!(day.requests, day.served_cgra + day.served_gpp + day.shed);
        assert_eq!(reports.len(), 1);
        match &reports[0] {
            ProbeReport::QueueDepth(series) => {
                assert!(!series.samples.is_empty(), "the day must sample the queue");
            }
            other => panic!("expected a queue-depth report, got {other:?}"),
        }
    }

    #[test]
    fn refurbished_replacements_predate_wear() {
        let plan = mini_plan().replacement(ReplacementSpec {
            policy: ReplacementPolicy::Refurbished { age_pct: 50 },
            unit_cost_cents: 4_000,
        });
        let (life, pre_age) = replacement_device(&plan);
        assert!(pre_age > 0.0);
        assert!(!life.is_dead());
        assert!(life.elapsed_years() > 0.0);
    }

    #[test]
    fn serve_fingerprint_tracks_every_plan_knob() {
        let plan = mini_plan();
        assert_eq!(serve_fingerprint(&plan), serve_fingerprint(&plan.clone()));
        assert_ne!(serve_fingerprint(&plan), serve_fingerprint(&plan.clone().devices(4)));
        assert_ne!(serve_fingerprint(&plan), serve_fingerprint(&plan.clone().clock_hz(999)));
        assert_ne!(
            serve_fingerprint(&plan),
            serve_fingerprint(&plan.clone().traffic(TrafficSpec::heavy()))
        );
    }
}
