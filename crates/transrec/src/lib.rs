//! # transrec — the full TransRec system simulator
//!
//! Ties every substrate of the `uaware-cgra` workspace together into the
//! machine the paper evaluates on (its Fig. 2): an RV32IM GPP, the hardware
//! DBT with its PC-indexed configuration cache, the CGRA reconfigurable
//! unit with (or without) the aging-mitigation movement extensions, an
//! allocation policy, per-FU utilization tracking, and the system-level
//! timing and energy models used for the design-space exploration.
//!
//! * [`system`] — the execution loop as observable, resumable sessions
//!   ([`System`], [`Session`], [`SystemConfig`], [`SystemStats`],
//!   [`run_gpp_only`]).
//! * [`telemetry`] — the typed event stream ([`telemetry::SimEvent`]),
//!   observers ([`telemetry::Observer`]) and probes-as-data
//!   ([`telemetry::ProbeSpec`], e.g. `util-trace@every-50000`).
//! * [`energy`] — the component energy model behind Fig. 6.
//! * [`dse`] — suite runs and the L×W design-space sweep.
//! * [`sweep`] — the parallel sweep engine ([`SweepPlan`], [`run_sweep`]):
//!   configuration × policy × suite grids sharded across a thread pool
//!   with byte-identical, worker-count-independent results.
//! * [`fleet`] — the closed-loop lifetime engine's driver
//!   ([`FleetPlan`], [`run_fleet`]): multi-year mission sequences with
//!   wear accumulation, end-of-life fault injection and failure-aware
//!   reallocation, fanned out over N-device fleets (DESIGN.md §11).
//! * [`traffic`] — live serving on top of the lifetime engine
//!   ([`ServePlan`], [`run_serving`]): seeded arrival processes (steady /
//!   diurnal / heavy-tailed), per-device request queues with
//!   utilization-aware backpressure, and replacement economics
//!   (DESIGN.md §13).
//! * [`scenario`] — the paper's BE/BP/BU design points.
//!
//! # Examples
//!
//! Accelerate one benchmark and compare allocation policies — specs in,
//! validated systems out:
//!
//! ```
//! use cgra::Fabric;
//! use transrec::System;
//! use uaware::PolicySpec;
//!
//! let workload = &mibench::suite(7)[0]; // bitcount
//! let mut baseline = System::builder(Fabric::be()).build().unwrap();
//! baseline.run(workload.program()).unwrap();
//! workload.verify(baseline.cpu()).unwrap();
//!
//! let mut rotated =
//!     System::builder(Fabric::be()).policy(PolicySpec::rotation()).build().unwrap();
//! rotated.run(workload.program()).unwrap();
//! workload.verify(rotated.cpu()).unwrap();
//!
//! // Same architectural results, flatter stress distribution.
//! let base_util = baseline.tracker().utilization();
//! let rot_util = rotated.tracker().utilization();
//! assert!(rot_util.max() < base_util.max());
//! ```

#![warn(missing_docs)]

pub mod dse;
pub mod energy;
pub mod fleet;
pub mod scenario;
pub mod sweep;
pub mod system;
pub mod telemetry;
pub mod traffic;

pub use dse::{
    dse_grid, gpp_reference, run_dse, run_suite, run_suite_with, run_suite_with_baseline,
    run_suite_with_options, BenchmarkRun, SuiteOptions, SuiteRun,
};
pub use energy::{gpp_only_energy, system_energy, EnergyBreakdown, EnergyParams};
pub use fleet::{
    run_fleet, run_fleet_campaign, CampaignOptions, CampaignStatus, Defect, DeviceOutcome,
    FleetPlan, FleetReport, PolicyFleet,
};
pub use scenario::{Scenario, ALL as SCENARIOS, BE, BP, BU};
pub use sweep::{run_sweep, run_sweep_observed, SuiteSpec, SweepCell, SweepPlan};
pub use system::{
    run_gpp_only, BuildError, Session, SessionStatus, System, SystemBuilder, SystemConfig,
    SystemError, SystemStats,
};
pub use telemetry::{Observer, ProbeReport, ProbeSpec, SimEvent};
pub use traffic::{
    probe_service_day, run_serving, run_serving_campaign, BackpressureSpec, DayServeReport,
    LatencyHistogram, ReplacementPolicy, ReplacementSpec, ServeCell, ServePlan, ServeReport,
    ServeStatus, TrafficSpec,
};
