//! The parallel sweep engine (DESIGN.md §9).
//!
//! The paper's evaluation — and every scaling experiment on top of it — is
//! a grid: system configurations × policy specs × workload suites. Each
//! grid cell is an independent [`SuiteRun`], so a sweep is embarrassingly
//! parallel; this module shards the cells across a vendored
//! [`threadpool::ThreadPool`] and merges the results back **in
//! deterministic cell order**, making the output byte-identical no matter
//! how many workers ran it (`--jobs 1` vs `--jobs N` is enforced by CI).
//!
//! Determinism comes from three rules:
//!
//! 1. every cell derives its inputs from the plan's base seed with
//!    [`uaware::derive_cell_seed`] — a pure function of the cell's lane,
//!    never of scheduling order;
//! 2. no state is shared between in-flight cells (each builds its own
//!    [`System`](crate::System) and policy instance);
//! 3. results are collected by input index, not completion order.
//!
//! The policy-independent GPP-only reference is hoisted out of the cells:
//! it is computed once per (GPP-parameter class × suite lane) block and
//! reused by every policy, so an N-policy sweep does not redo it N times.

use cgra::Fabric;
use mibench::Workload;
use obs::Registry;
use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;
use uaware::{derive_cell_seed, PolicySpec};

use crate::dse::{gpp_reference, run_suite_with_options, SuiteOptions, SuiteRun};
use crate::energy::EnergyParams;
use crate::system::{BuildError, SystemConfig, SystemError};
use crate::telemetry::ProbeSpec;

/// A named selection of the mibench workload suite — one cell of the
/// sweep's workload axis.
///
/// `members` are indices into the full [`mibench::suite`] (see
/// [`mibench::NAMES`] for the ordering); the workloads themselves are
/// rebuilt from the lane's derived seed at sweep time, so a `SuiteSpec` is
/// pure data and can be sent across threads or serialized into a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Label for reports (`mibench` for the full suite).
    pub name: String,
    /// Indices into the full suite, in run order (must be unique and in
    /// range).
    pub members: Vec<usize>,
}

impl SuiteSpec {
    /// The full ten-benchmark mibench suite.
    pub fn full() -> SuiteSpec {
        SuiteSpec { name: "mibench".to_string(), members: (0..mibench::NAMES.len()).collect() }
    }

    /// A named subset of the suite by index into [`mibench::NAMES`].
    pub fn subset(name: impl Into<String>, members: Vec<usize>) -> SuiteSpec {
        SuiteSpec { name: name.into(), members }
    }

    /// Builds this selection's workloads with input `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of range or repeated — both are
    /// plan-construction bugs, not runtime conditions.
    pub fn workloads(&self, seed: u64) -> Vec<Workload> {
        let mut all: Vec<Option<Workload>> = mibench::suite(seed).into_iter().map(Some).collect();
        self.members
            .iter()
            .map(|&i| {
                all.get_mut(i)
                    .unwrap_or_else(|| panic!("suite `{}`: member {i} out of range", self.name))
                    .take()
                    .unwrap_or_else(|| panic!("suite `{}`: member {i} repeated", self.name))
            })
            .collect()
    }
}

/// One cell of a sweep: indices into the plan's three axes plus the cell's
/// flat index (the deterministic merge order).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Flat cell index (the order [`run_sweep`] returns results in).
    pub index: usize,
    /// Index into [`SweepPlan::configs`].
    pub config: usize,
    /// Index into [`SweepPlan::suites`].
    pub suite: usize,
    /// Index into [`SweepPlan::policies`].
    pub policy: usize,
}

/// The cross product of system configurations × policy specs × workload
/// suites — everything [`run_sweep`] needs, as plain data.
///
/// Cells are enumerated configuration-major, then suite, then policy
/// (see [`SweepPlan::cells`]); [`SweepPlan::index_of`] maps axis indices
/// back to the flat result index.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use transrec::sweep::{run_sweep, SuiteSpec, SweepPlan};
/// use uaware::PolicySpec;
///
/// let plan = SweepPlan::new(0xDAC2020)
///     .fabric(Fabric::be())
///     .policy(PolicySpec::Baseline)
///     .policy(PolicySpec::rotation())
///     .suites(vec![SuiteSpec::subset("mini", vec![1])]); // crc32 only
/// let runs = run_sweep(&plan, 2).unwrap();
/// assert_eq!(runs.len(), 2);
/// assert!(runs.iter().all(|r| r.all_verified()));
/// assert_eq!(runs[plan.index_of(0, 0, 1)].policy, "rotation:snake@per-exec");
/// ```
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// Base experiment seed; suite lane `l` builds its workloads from
    /// [`derive_cell_seed`]`(base_seed, l)` (lane 0 keeps the base seed).
    pub base_seed: u64,
    /// Energy model shared by every cell.
    pub energy: EnergyParams,
    /// The system-configuration axis.
    pub configs: Vec<SystemConfig>,
    /// The policy axis.
    pub policies: Vec<PolicySpec>,
    /// The workload-suite axis (defaults to the single full suite).
    pub suites: Vec<SuiteSpec>,
    /// Telemetry probes attached to every cell (fresh observer instances
    /// per benchmark, DESIGN.md §10). Probes are data, so the plan stays
    /// `Send` and the results stay byte-identical for every worker count.
    pub probes: Vec<ProbeSpec>,
}

impl SweepPlan {
    /// An empty plan over the full mibench suite with default energy
    /// parameters. Add configurations and policies with the chainable
    /// builders.
    pub fn new(base_seed: u64) -> SweepPlan {
        SweepPlan {
            base_seed,
            energy: EnergyParams::default(),
            configs: Vec::new(),
            policies: Vec::new(),
            suites: vec![SuiteSpec::full()],
            probes: Vec::new(),
        }
    }

    /// Adds a system configuration to the configuration axis.
    pub fn config(mut self, config: SystemConfig) -> SweepPlan {
        self.configs.push(config);
        self
    }

    /// Adds [`SystemConfig::new`]`(fabric)` to the configuration axis.
    pub fn fabric(self, fabric: Fabric) -> SweepPlan {
        self.config(SystemConfig::new(fabric))
    }

    /// Adds a policy to the policy axis.
    pub fn policy(mut self, spec: PolicySpec) -> SweepPlan {
        self.policies.push(spec);
        self
    }

    /// Adds several policies to the policy axis.
    pub fn policies(mut self, specs: impl IntoIterator<Item = PolicySpec>) -> SweepPlan {
        self.policies.extend(specs);
        self
    }

    /// Replaces the workload-suite axis (the default is the full suite).
    pub fn suites(mut self, suites: Vec<SuiteSpec>) -> SweepPlan {
        self.suites = suites;
        self
    }

    /// Replaces the energy model.
    pub fn energy(mut self, energy: EnergyParams) -> SweepPlan {
        self.energy = energy;
        self
    }

    /// Attaches a telemetry probe to every cell (repeatable).
    pub fn probe(mut self, spec: ProbeSpec) -> SweepPlan {
        self.probes.push(spec);
        self
    }

    /// Attaches several telemetry probes to every cell.
    pub fn probes(mut self, specs: impl IntoIterator<Item = ProbeSpec>) -> SweepPlan {
        self.probes.extend(specs);
        self
    }

    /// The number of cells in the cross product.
    pub fn len(&self) -> usize {
        self.configs.len() * self.suites.len() * self.policies.len()
    }

    /// `true` if any axis is empty (nothing to run).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every cell, in deterministic order: configuration-major, then
    /// suite, then policy.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for config in 0..self.configs.len() {
            for suite in 0..self.suites.len() {
                for policy in 0..self.policies.len() {
                    cells.push(SweepCell { index: cells.len(), config, suite, policy });
                }
            }
        }
        cells
    }

    /// The flat result index of cell (`config`, `suite`, `policy`).
    pub fn index_of(&self, config: usize, suite: usize, policy: usize) -> usize {
        (config * self.suites.len() + suite) * self.policies.len() + policy
    }

    /// The derived workload seed of suite lane `lane` (DESIGN.md §9).
    pub fn suite_seed(&self, lane: usize) -> u64 {
        derive_cell_seed(self.base_seed, lane as u64)
    }
}

/// Runs every cell of `plan`, sharded across `jobs` workers, and returns
/// the [`SuiteRun`]s in [`SweepPlan::cells`] order.
///
/// `jobs = 0` sizes the pool with [`threadpool::default_workers`] (all
/// cores, overridable via [`threadpool::NUM_THREADS_ENV`]); `jobs = 1`
/// runs everything inline on the calling thread — the old sequential
/// behaviour. The results are byte-identical for every worker count.
///
/// # Errors
///
/// If any cell fails, the error of the *lowest-indexed* failing cell is
/// returned (so error reporting is as deterministic as success); a
/// movement spec on a movement-less configuration is rejected before
/// anything runs.
pub fn run_sweep(plan: &SweepPlan, jobs: usize) -> Result<Vec<SuiteRun>, SystemError> {
    Ok(run_sweep_inner(plan, jobs, false)?.0)
}

/// [`run_sweep`] with the flight recorder on: every GPP-reference block
/// and every cell runs under a per-work-item
/// [`MetricsCollector`](obs::MetricsCollector), and the finished
/// registries fold in deterministic block/cell order into one
/// [`Registry`] (returned alongside the runs, and also folded into
/// [`obs::global`]). Because the fold is a commutative monoid over
/// integer state, the registry is byte-identical for every worker count
/// (DESIGN.md §16).
///
/// # Errors
///
/// See [`run_sweep`].
pub fn run_sweep_observed(
    plan: &SweepPlan,
    jobs: usize,
) -> Result<(Vec<SuiteRun>, Registry), SystemError> {
    let out = run_sweep_inner(plan, jobs, true)?;
    obs::global::fold(&out.1);
    Ok(out)
}

/// Shared body of [`run_sweep`]/[`run_sweep_observed`]. `collect_metrics`
/// is a knob (not always-on) because per-event collection has a real cost
/// on the GPP retire loop.
fn run_sweep_inner(
    plan: &SweepPlan,
    jobs: usize,
    collect_metrics: bool,
) -> Result<(Vec<SuiteRun>, Registry), SystemError> {
    // Validate the whole grid up front: cheap, and it keeps the "rejected
    // before anything runs" contract of the sequential path.
    for spec in &plan.policies {
        if spec.needs_movement() && !plan.configs.iter().all(|c| c.movement_hardware) {
            return Err(BuildError::MovementHardwareAbsent { policy: spec.to_string() }.into());
        }
    }
    if plan.is_empty() {
        return Ok((Vec::new(), Registry::new()));
    }
    let pool = if jobs == 0 { ThreadPool::with_default_workers() } else { ThreadPool::new(jobs) };

    // Phase 1: build each suite lane's workloads from its derived seed,
    // once, and share them immutably across cells.
    let suites: Vec<Vec<Workload>> = pool.par_map((0..plan.suites.len()).collect(), |_, lane| {
        plan.suites[lane].workloads(plan.suite_seed(lane))
    });

    // Phase 2: the GPP-only reference is policy-independent *and*
    // fabric-independent — it only depends on a configuration's memory,
    // timing and step parameters — so compute it once per (GPP-parameter
    // class × suite lane) block and let every cell look it up.
    let same_gpp = |a: &SystemConfig, b: &SystemConfig| {
        a.mem_size == b.mem_size && a.timing == b.timing && a.max_steps == b.max_steps
    };
    let rep: Vec<usize> = plan
        .configs
        .iter()
        .enumerate()
        .map(|(i, c)| plan.configs[..i].iter().position(|prev| same_gpp(prev, c)).unwrap_or(i))
        .collect();
    let classes: Vec<usize> = (0..plan.configs.len()).filter(|&i| rep[i] == i).collect();
    let class_of: Vec<usize> =
        rep.iter().map(|r| classes.iter().position(|c| c == r).expect("rep is a class")).collect();
    let blocks: Vec<(usize, usize)> = (0..classes.len())
        .flat_map(|class| (0..plan.suites.len()).map(move |lane| (class, lane)))
        .collect();
    let gpp_blocks: Vec<(Result<Vec<u64>, SystemError>, Registry)> =
        pool.par_map(blocks, |_, (class, lane)| {
            let work = || gpp_reference(&plan.configs[classes[class]], &suites[lane]);
            if collect_metrics {
                obs::collect(work)
            } else {
                (work(), Registry::new())
            }
        });
    let mut gpp: Vec<Vec<u64>> = Vec::with_capacity(gpp_blocks.len());
    let mut metrics = Registry::new();
    for (block, registry) in gpp_blocks {
        gpp.push(block?);
        metrics.merge(&registry);
    }

    // Phase 3: the cells themselves, merged back in index order.
    let outcomes: Vec<(Result<SuiteRun, SystemError>, Registry)> =
        pool.par_map(plan.cells(), |_, cell| {
            let work = || {
                run_suite_with_options(
                    &plan.configs[cell.config],
                    &suites[cell.suite],
                    &plan.energy,
                    SuiteOptions {
                        policy: plan.policies[cell.policy],
                        probes: &plan.probes,
                        gpp_reference: Some(
                            &gpp[class_of[cell.config] * plan.suites.len() + cell.suite],
                        ),
                    },
                )
            };
            if collect_metrics {
                obs::collect(work)
            } else {
                (work(), Registry::new())
            }
        });
    let mut runs = Vec::with_capacity(outcomes.len());
    for (run, registry) in outcomes {
        runs.push(run?);
        metrics.merge(&registry);
    }
    Ok((runs, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_enumerate_config_major_and_index_of_agrees() {
        let plan = SweepPlan::new(7)
            .fabric(Fabric::be())
            .fabric(Fabric::bp())
            .policy(PolicySpec::Baseline)
            .policy(PolicySpec::rotation())
            .policy(PolicySpec::HealthAware)
            .suites(vec![SuiteSpec::subset("a", vec![0]), SuiteSpec::subset("b", vec![1])]);
        assert_eq!(plan.len(), 12);
        let cells = plan.cells();
        assert_eq!(cells.len(), 12);
        for cell in &cells {
            assert_eq!(plan.index_of(cell.config, cell.suite, cell.policy), cell.index);
        }
        assert_eq!((cells[0].config, cells[0].suite, cells[0].policy), (0, 0, 0));
        assert_eq!((cells[1].config, cells[1].suite, cells[1].policy), (0, 0, 1));
        assert_eq!((cells[3].config, cells[3].suite, cells[3].policy), (0, 1, 0));
        assert_eq!((cells[6].config, cells[6].suite, cells[6].policy), (1, 0, 0));
    }

    #[test]
    fn suite_lane_zero_reproduces_the_historical_stream() {
        let plan = SweepPlan::new(0xDAC2020);
        assert_eq!(plan.suite_seed(0), 0xDAC2020);
        assert_ne!(plan.suite_seed(1), 0xDAC2020);
    }

    #[test]
    fn full_suite_spec_selects_everything_in_order() {
        let spec = SuiteSpec::full();
        assert_eq!(spec.members.len(), mibench::NAMES.len());
        let workloads = spec.workloads(7);
        let names: Vec<&str> = workloads.iter().map(|w| w.name()).collect();
        assert_eq!(names, mibench::NAMES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn suite_spec_rejects_bad_member() {
        SuiteSpec::subset("bad", vec![99]).workloads(7);
    }

    #[test]
    fn empty_plan_runs_no_cells() {
        let runs = run_sweep(&SweepPlan::new(7), 4).unwrap();
        assert!(runs.is_empty());
    }

    #[test]
    fn movement_spec_rejected_before_anything_runs() {
        let config = SystemConfig { movement_hardware: false, ..SystemConfig::new(Fabric::be()) };
        let plan = SweepPlan::new(7).config(config).policy(PolicySpec::rotation());
        let err = run_sweep(&plan, 4).unwrap_err();
        assert!(matches!(err, SystemError::Build(BuildError::MovementHardwareAbsent { .. })));
    }
}
