//! The telemetry layer's core contracts (DESIGN.md §10):
//!
//! * `SystemStats` is *just one observer* over the event stream — an
//!   independently attached `stats` probe replaying the identical stream
//!   must reproduce the built-in counters struct-equal, across the full
//!   mibench suite and every evaluated policy class;
//! * sessions are step-equivalent to `run()` and resumable;
//! * epoch snapshots end on the run's exact final state.

use cgra::Fabric;
use transrec::telemetry::{ProbeReport, ProbeSpec};
use transrec::{SessionStatus, System, SystemStats};
use uaware::PolicySpec;

/// The four policy classes of the acceptance matrix.
fn policy_matrix() -> [PolicySpec; 4] {
    [
        PolicySpec::Baseline,
        PolicySpec::rotation(),
        PolicySpec::Random { seed: uaware::DEFAULT_RANDOM_SEED },
        PolicySpec::HealthAware,
    ]
}

/// Runs one workload under `spec` with an external `stats` probe attached
/// and returns (built-in stats, replayed stats).
fn dual_stats(spec: PolicySpec, workload: &mibench::Workload) -> (SystemStats, SystemStats) {
    let mut sys =
        System::builder(Fabric::be()).policy(spec).probe(ProbeSpec::Stats).build().unwrap();
    sys.run(workload.program()).unwrap();
    workload.verify(sys.cpu()).unwrap();
    let built_in = *sys.stats();
    let reports = sys.probe_reports();
    let [ProbeReport::Stats(replayed)] = reports.as_slice() else {
        panic!("stats probe must report");
    };
    (built_in, *replayed)
}

#[test]
fn stats_stream_equivalence_across_the_full_suite() {
    // The acceptance criterion: counters derived from the event stream are
    // byte-identical (struct-equal) to the system's own, on every mibench
    // workload × {baseline, rotation, random, health-aware}.
    for spec in policy_matrix() {
        for workload in &mibench::suite(0xDAC2020) {
            let (built_in, replayed) = dual_stats(spec, workload);
            assert_eq!(built_in, replayed, "{spec} on {} diverged", workload.name());
            // And the stream accounts for every cycle the CPU saw.
            assert!(built_in.total_cycles() > 0);
        }
    }
}

fn toy_program() -> rv32::Program {
    rv32::asm::assemble(
        "
        li   a0, 0
        li   a1, 0
    loop:
        addi t0, a1, 3
        slli t1, t0, 2
        xor  t2, t1, a1
        and  t3, t2, t0
        add  a0, a0, t3
        addi a1, a1, 1
        li   t4, 400
        blt  a1, t4, loop
        ebreak
    ",
    )
    .unwrap()
}

#[test]
fn stepped_session_is_equivalent_to_run() {
    let program = toy_program();
    let mut whole = System::builder(Fabric::be()).policy(PolicySpec::rotation()).build().unwrap();
    whole.run(&program).unwrap();

    let mut stepped = System::builder(Fabric::be()).policy(PolicySpec::rotation()).build().unwrap();
    let mut session = stepped.session(&program).unwrap();
    let mut steps = 0u64;
    while session.step().unwrap().is_running() {
        steps += 1;
    }
    assert!(steps > 400, "one step per scheduling decision, got {steps}");

    assert_eq!(whole.stats(), stepped.stats());
    assert_eq!(whole.cpu().cycles(), stepped.cpu().cycles());
    assert_eq!(whole.cpu().reg(rv32::Reg::A0), stepped.cpu().reg(rv32::Reg::A0));
    assert_eq!(whole.tracker().utilization(), stepped.tracker().utilization());
}

#[test]
fn run_for_advances_by_cycle_budget_and_resumes() {
    let program = toy_program();
    let mut reference = System::builder(Fabric::be()).build().unwrap();
    reference.run(&program).unwrap();
    let total = reference.cpu().cycles();

    let mut sys = System::builder(Fabric::be()).build().unwrap();
    let mut session = sys.session(&program).unwrap();
    let status = session.run_for(total / 4).unwrap();
    assert!(status.is_running());
    let mid = session.system().cpu().cycles();
    assert!(mid >= total / 4 && mid < total, "paused mid-run at {mid}/{total}");
    // run_for(0) is a no-op.
    assert_eq!(session.run_for(0).unwrap(), SessionStatus::Running);
    assert_eq!(session.system().cpu().cycles(), mid);

    // Let the handle go, inspect the system, resume where it left off.
    assert!(sys.stats().offloads > 0);
    let exit = sys.session_resume().finish().unwrap();
    assert!(matches!(exit, rv32::cpu::Exit::Break { .. }));
    assert_eq!(sys.cpu().cycles(), total);
    assert_eq!(sys.stats(), reference.stats());
}

#[test]
fn finished_session_stays_exited() {
    let program = toy_program();
    let mut sys = System::builder(Fabric::be()).build().unwrap();
    let mut session = sys.session(&program).unwrap();
    let exit = session.finish().unwrap();
    // Stepping a halted program is a no-op reporting the same exit — even
    // for a zero cycle budget (so status polling can never spin).
    assert_eq!(session.step().unwrap(), SessionStatus::Exited(exit));
    assert_eq!(session.run_for(1_000).unwrap(), SessionStatus::Exited(exit));
    assert_eq!(session.run_for(0).unwrap(), SessionStatus::Exited(exit));
}

#[test]
fn new_session_flushes_stale_translations() {
    // A different program at overlapping addresses must never hit the
    // previous program's PC-indexed configurations: session() flushes the
    // DBT state like a context switch (DESIGN.md §10).
    let second = rv32::asm::assemble(
        "
        li   a0, 0
        li   a1, 0
    loop:
        addi t0, a1, 7
        or   t1, t0, a1
        sub  t2, t1, t0
        add  a0, a0, t2
        addi a1, a1, 1
        li   t4, 300
        blt  a1, t4, loop
        ebreak
    ",
    )
    .unwrap();
    let mut fresh = System::builder(Fabric::be()).build().unwrap();
    fresh.run(&second).unwrap();
    let expected = fresh.cpu().reg(rv32::Reg::A0);

    let mut sys = System::builder(Fabric::be()).build().unwrap();
    sys.run(&toy_program()).unwrap();
    sys.run(&second).unwrap();
    assert_eq!(sys.cpu().reg(rv32::Reg::A0), expected, "stale configuration executed");
    // Wear state kept accumulating across the switch.
    assert_eq!(sys.tracker().executions(), sys.stats().offloads);
    assert!(sys.stats().offloads > fresh.stats().offloads);
}

#[test]
fn epoch_trace_ends_on_the_final_tracker_state() {
    let program = toy_program();
    let mut sys = System::builder(Fabric::be())
        .policy(PolicySpec::rotation())
        .probe(ProbeSpec::util_trace(500))
        .build()
        .unwrap();
    sys.run(&program).unwrap();
    let reports = sys.probe_reports();
    let [ProbeReport::UtilTrace(trace)] = reports.as_slice() else {
        panic!("util-trace probe must report");
    };
    assert!(trace.samples.len() > 2, "several epochs sampled");
    assert!(trace.samples.windows(2).all(|w| w[0].cycle < w[1].cycle), "cycles strictly increase");
    let last = trace.samples.last().unwrap();
    assert_eq!(last.cycle, sys.cpu().cycles(), "final sample taken at the exit");
    assert_eq!(last.executions, sys.tracker().executions());
    assert_eq!(last.exec_counts, sys.tracker().exec_counts());
    assert_eq!((trace.rows, trace.cols), (2, 16));
    // Rotation flattens: cumulative worst utilization decays over the run.
    let worst = trace.worst_series();
    assert!(worst.first().unwrap().1 > worst.last().unwrap().1);
}

#[test]
fn event_counts_agree_with_stats() {
    let program = toy_program();
    let mut sys = System::builder(Fabric::be())
        .policy(PolicySpec::rotation())
        .probe(ProbeSpec::EventCounts)
        .build()
        .unwrap();
    sys.run(&program).unwrap();
    let reports = sys.probe_reports();
    let [ProbeReport::EventCounts(counts)] = reports.as_slice() else {
        panic!("event-counts probe must report");
    };
    let stats = sys.stats();
    assert_eq!(counts.gpp_retired, stats.gpp_retired);
    assert_eq!(counts.offloads_started, stats.offloads);
    assert_eq!(counts.offloads_completed, stats.offloads);
    assert_eq!(counts.offloads_skipped, stats.offloads_skipped);
    assert_eq!(counts.cache_insertions, sys.cache_stats().insertions);
    assert_eq!(counts.cache_evictions, sys.cache_stats().evictions);
    // The derived lookup identity behind StatsObserver (DESIGN.md §10).
    assert_eq!(stats.cache_lookups, stats.offloads + stats.gpp_retired);
    // Rotation at per-exec granularity actually rotates the resident
    // configuration.
    assert!(counts.rotations > 0);
    assert!(counts.config_loads > 0);
}

#[test]
fn probes_accumulate_across_sessions() {
    // Telemetry follows the system, not the session: two programs on one
    // system produce one continuous stream.
    let program = toy_program();
    let mut sys = System::builder(Fabric::be()).probe(ProbeSpec::Stats).build().unwrap();
    sys.run(&program).unwrap();
    let after_first = *sys.stats();
    sys.run(&program).unwrap();
    let reports = sys.probe_reports();
    let [ProbeReport::Stats(replayed)] = reports.as_slice() else {
        panic!("stats probe must report");
    };
    assert_eq!(replayed, sys.stats());
    assert!(replayed.offloads > after_first.offloads, "second session extends the stream");
}
