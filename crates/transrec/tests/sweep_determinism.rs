//! The sweep engine's determinism contract: results must be byte-identical
//! regardless of worker count, and identical to the sequential
//! [`run_suite_with`] path cell by cell.

use cgra::Fabric;
use transrec::telemetry::{ProbeReport, ProbeSpec};
use transrec::{
    run_dse, run_suite_with, run_sweep, EnergyParams, SuiteSpec, SweepPlan, SystemConfig,
};
use uaware::PolicySpec;

/// A 2-policy × 2-workload × 2-fabric plan — small enough for a debug-mode
/// test, wide enough (8 cells) that a 4-worker pool actually interleaves.
fn mini_plan() -> SweepPlan {
    SweepPlan::new(0xDAC2020)
        .fabric(Fabric::be())
        .fabric(Fabric::bp())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .suites(vec![SuiteSpec::subset("mini", vec![0, 1])]) // bitcount, crc32
}

#[test]
fn sweep_json_is_identical_across_worker_counts() {
    let plan = mini_plan();
    let sequential = run_sweep(&plan, 1).expect("jobs=1 sweep runs");
    let parallel = run_sweep(&plan, 4).expect("jobs=4 sweep runs");
    assert_eq!(sequential.len(), plan.len());
    assert!(sequential.iter().all(|r| r.all_verified()));
    let a = serde_json::to_string_pretty(&sequential).expect("serialize");
    let b = serde_json::to_string_pretty(&parallel).expect("serialize");
    assert_eq!(a, b, "jobs=1 and jobs=4 must produce byte-identical JSON");
}

#[test]
fn sweep_cells_match_the_sequential_suite_path() {
    // The sweep's memoized GPP baseline and derived lane-0 seed must not
    // change what a cell computes: each cell equals run_suite_with on the
    // same inputs.
    let plan = mini_plan();
    let runs = run_sweep(&plan, 4).expect("sweep runs");
    let workloads = plan.suites[0].workloads(plan.suite_seed(0));
    for (ci, config) in plan.configs.iter().enumerate() {
        for (pi, spec) in plan.policies.iter().enumerate() {
            let reference = run_suite_with(config.clone(), &workloads, &plan.energy, spec)
                .expect("sequential suite runs");
            let cell = &runs[plan.index_of(ci, 0, pi)];
            assert_eq!(cell, &reference, "cell ({ci}, 0, {pi}) diverged");
        }
    }
}

#[test]
fn run_dse_covers_the_paper_grid_in_order() {
    // run_dse is a thin SweepPlan wrapper now; pin its geometry mapping
    // ((l, w) -> Fabric::new(w, l): rows = W, cols = L) and grid order.
    let runs =
        run_dse(0xDAC2020, &EnergyParams::default(), &PolicySpec::Baseline, 2).expect("dse runs");
    let grid = transrec::dse_grid();
    assert_eq!(runs.len(), grid.len());
    for ((l, w), run) in grid.into_iter().zip(&runs) {
        assert_eq!((run.cols, run.rows), (l, w), "grid point (L{l},W{w}) out of place");
        assert_eq!(run.policy, "baseline");
        assert!(run.all_verified());
    }
}

#[test]
fn sweep_with_probes_is_identical_across_worker_counts() {
    // Telemetry rides the plan as data (fresh observers per cell), so the
    // probe-bearing output must stay byte-identical for every worker
    // count, exactly like the counters.
    let plan = mini_plan().probe(ProbeSpec::util_trace(10_000)).probe(ProbeSpec::EventCounts);
    let sequential = run_sweep(&plan, 1).expect("jobs=1 sweep runs");
    let parallel = run_sweep(&plan, 4).expect("jobs=4 sweep runs");
    let a = serde_json::to_string_pretty(&sequential).expect("serialize");
    let b = serde_json::to_string_pretty(&parallel).expect("serialize");
    assert_eq!(a, b, "probed sweeps must produce byte-identical JSON");
    // Every benchmark of every cell carries both probe reports, in order.
    for run in &sequential {
        for bench in &run.benchmarks {
            assert_eq!(bench.probes.len(), 2, "{}/{}", run.policy, bench.name);
            assert!(matches!(bench.probes[0], ProbeReport::UtilTrace(_)));
            assert!(matches!(bench.probes[1], ProbeReport::EventCounts(_)));
            let trace = bench.probes[0].as_util_trace().unwrap();
            assert_eq!(trace.total_cycles(), bench.stats.total_cycles());
        }
    }
}

#[test]
fn default_jobs_zero_resolves_to_all_cores() {
    // jobs = 0 must behave like any other worker count: same bytes.
    let plan = SweepPlan::new(0xDAC2020)
        .config(SystemConfig::new(Fabric::be()))
        .policy(PolicySpec::HealthAware)
        .suites(vec![SuiteSpec::subset("one", vec![1])]);
    let auto = run_sweep(&plan, 0).expect("auto-sized sweep runs");
    let one = run_sweep(&plan, 1).expect("sequential sweep runs");
    assert_eq!(serde_json::to_string(&auto).unwrap(), serde_json::to_string(&one).unwrap());
}
