//! System-level behavioural tests: fabric-resolved exits, warm-context
//! accounting, energy invariants and DSE plumbing.

use cgra::{Fabric, FaultMask};
use rv32::asm::assemble;
use rv32::Reg;
use transrec::{
    gpp_only_energy, run_gpp_only, system_energy, EnergyParams, System, SystemConfig, SystemError,
};
use uaware::{BaselinePolicy, RotationPolicy, Snake};

fn run_sys(src: &str) -> System {
    let p = assemble(src).unwrap();
    let mut sys = System::new(SystemConfig::new(Fabric::be()), Box::new(BaselinePolicy));
    sys.run(&p).unwrap();
    sys
}

#[test]
fn branch_exit_takes_both_paths() {
    // A loop whose body branches each way; both sides must compute right.
    let sys = run_sys(
        "
        li   s0, 100
        li   s1, 0          # even counter
        li   s2, 0          # odd sum
    loop:
        andi t0, s0, 1
        slli t1, s0, 1
        xor  t2, t1, s0
        bnez t0, odd
        addi s1, s1, 1
        and  s4, t2, t1
        j    next
    odd:
        add  s2, s2, s0
        or   s5, t2, t1
    next:
        addi s0, s0, -1
        bnez s0, loop
        ebreak
    ",
    );
    assert_eq!(sys.cpu().reg(Reg::from_name("s1").unwrap()), 50);
    // sum of odd numbers 1..=99 = 50^2 = 2500
    assert_eq!(sys.cpu().reg(Reg::from_name("s2").unwrap()), 2500);
    assert!(sys.stats().offloads > 50, "loop body should offload");
}

#[test]
fn jump_exit_links_the_return_address() {
    // `call` terminating a trace: the link register must still be written.
    let sys = run_sys(
        "
    main:
        li   a0, 5
        li   a1, 7
        add  a2, a0, a1
        call helper
        add  a0, a0, a2
        ebreak
    helper:
        addi a0, a0, 100
        ret
    ",
    );
    assert_eq!(sys.cpu().reg(Reg::A0), 5 + 100 + 12);
}

#[test]
fn warm_context_skips_input_transfers() {
    // A tight fabric-resident loop: after warm-up, iterations transfer no
    // inputs, so transfer cycles stay far below one per iteration.
    let sys = run_sys(
        "
        li   s0, 2000
        li   s1, 0
    loop:
        addi s1, s1, 3
        xor  s2, s1, s0
        and  s3, s2, s1
        addi s0, s0, -1
        bnez s0, loop
        ebreak
    ",
    );
    let s = sys.stats();
    assert!(s.offloads >= 1990, "nearly every iteration offloads, got {}", s.offloads);
    assert!(
        s.transfer_cycles < s.offloads / 4,
        "warm context should suppress transfers: {} transfers for {} offloads",
        s.transfer_cycles,
        s.offloads
    );
}

#[test]
fn division_runs_on_the_gpp() {
    let sys = run_sys(
        "
        li   s0, 30
        li   s1, 0
    loop:
        li   t0, 7
        div  t1, s0, t0      # not a fabric op
        add  s1, s1, t1
        addi s0, s0, -1
        bnez s0, loop
        ebreak
    ",
    );
    // Correct result despite the unsupported instruction in the hot loop.
    let expect: u32 = (1..=30).map(|v: i32| (v / 7) as u32).sum();
    assert_eq!(sys.cpu().reg(Reg::from_name("s1").unwrap()), expect);
    assert!(sys.stats().gpp_retired > 30, "div must retire on the GPP");
}

#[test]
fn energy_accounting_is_internally_consistent() {
    let w = &mibench::suite(9)[0];
    let cfg = SystemConfig::new(Fabric::be());
    let mut sys = System::new(cfg.clone(), Box::new(RotationPolicy::new(Snake)));
    sys.run(w.program()).unwrap();
    let params = EnergyParams::default();
    let b = system_energy(&params, &cfg.fabric, sys.stats());
    assert!(b.gpp_active > 0.0 && b.cgra_dynamic > 0.0 && b.cgra_leakage > 0.0);
    let total = b.total();
    // Doubling leakage strictly increases the total.
    let mut leaky = params;
    leaky.fu_leak *= 2.0;
    assert!(system_energy(&leaky, &cfg.fabric, sys.stats()).total() > total);
    // GPP-only energy is proportional to cycles.
    assert_eq!(gpp_only_energy(&params, 100), 100.0);
}

#[test]
fn dse_grid_matches_paper() {
    let grid = transrec::dse_grid();
    assert_eq!(grid.len(), 12);
    for l in [8, 16, 24, 32] {
        for w in [2, 4, 8] {
            assert!(grid.contains(&(l, w)), "missing (L{l},W{w})");
        }
    }
}

#[test]
fn speedup_reported_against_gpp_reference() {
    let w = &mibench::suite(4)[1]; // crc32
    let cfg = SystemConfig::new(Fabric::bp());
    let gpp = run_gpp_only(w.program(), cfg.mem_size, cfg.timing, cfg.max_steps).unwrap();
    let mut sys = System::new(cfg, Box::new(BaselinePolicy));
    sys.run(w.program()).unwrap();
    let speedup = gpp.cycles() as f64 / sys.cpu().cycles() as f64;
    assert!(speedup > 1.5, "crc32 on BP should beat the GPP clearly, got {speedup}");
}

#[test]
fn rotation_visits_many_distinct_offsets() {
    let w = &mibench::suite(4)[1];
    let mut sys =
        System::new(SystemConfig::new(Fabric::be()), Box::new(RotationPolicy::new(Snake)));
    sys.run(w.program()).unwrap();
    let grid = sys.tracker().utilization();
    // With per-execution snake movement over a 32-FU fabric and hundreds of
    // executions, every FU must have been touched.
    assert!(grid.min() > 0.0, "rotation should reach every FU");
}

#[test]
fn unchecked_system_surfaces_movement_unsupported_at_offload_time() {
    // The System::new escape hatch skips the builder's spec/hardware
    // validation, so a movement policy on a movement-less configuration
    // must still be caught by the runtime guard — at the first non-origin
    // offload, not before. Driving the session step by step pins *when*
    // the error surfaces: translation and GPP execution proceed normally
    // until the policy first asks for a non-origin pivot.
    let w = &mibench::suite(4)[1]; // crc32
    let config = SystemConfig { movement_hardware: false, ..SystemConfig::new(Fabric::be()) };
    let mut sys = System::new(config, Box::new(RotationPolicy::new(Snake)));
    let mut session = sys.session(w.program()).unwrap();
    let err = loop {
        match session.step() {
            Ok(status) => assert!(status.is_running(), "must fault before completing"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, SystemError::MovementUnsupported { .. }), "got {err}");
    // The run made real progress on the GPP before the guard fired…
    assert!(sys.stats().gpp_retired > 0, "GPP ran before the first offload");
    // …and the snake's first move away from the origin is what tripped it:
    // at most one (origin-anchored) offload can have completed.
    assert!(sys.stats().offloads <= 1, "faulted on the first non-origin pivot");
}

#[test]
fn config_faults_apply_at_construction_and_fallback_degrades_gracefully() {
    let w = &mibench::suite(4)[1]; // crc32
    let mut mask = FaultMask::healthy(&Fabric::be());
    mask.mark_dead(0, 0); // the immobile baseline's only pivot
    let fatal = SystemConfig { faults: Some(mask), ..SystemConfig::new(Fabric::be()) };
    // Without the fallback, exhaustion on the config-injected mask is fatal
    // (the device's end of life, DESIGN.md §11).
    let mut sys = System::new(fatal.clone(), Box::new(BaselinePolicy));
    let err = sys.run(w.program()).unwrap_err();
    assert!(matches!(err, SystemError::AllocationExhausted { .. }), "got {err}");
    // With it, the GPP absorbs the unplaceable configurations: the run
    // completes, offloads nothing, and accounts the starvation.
    let degraded = SystemConfig { fault_fallback: true, ..fatal };
    let mut sys = System::new(degraded.clone(), Box::new(BaselinePolicy));
    sys.run(w.program()).unwrap();
    assert_eq!(sys.stats().offloads, 0, "the dead origin never hosts an execution");
    assert!(sys.stats().offloads_starved > 0, "give-ups are accounted, not fatal");
    // A movable policy routes around the same mask and still offloads.
    let mut sys = System::new(degraded, Box::new(RotationPolicy::new(Snake)));
    sys.run(w.program()).unwrap();
    assert!(sys.stats().offloads > 0, "rotation dodges the dead corner");
    assert_eq!(sys.tracker().exec_count(0, 0), 0, "nothing ran on the dead FU");
}

#[test]
fn builder_fault_mask_overrides_config_faults() {
    let mut origin_dead = FaultMask::healthy(&Fabric::be());
    origin_dead.mark_dead(0, 0);
    let config = SystemConfig {
        faults: Some(origin_dead),
        fault_fallback: true,
        ..SystemConfig::new(Fabric::be())
    };
    // The builder keeps the config's mask when it has none of its own…
    let sys = System::builder(config.fabric).policy(uaware::PolicySpec::Baseline).build().unwrap();
    assert!(sys.fault_mask().is_none(), "builder default injects no mask");
    // …and a builder-supplied mask wins over the config's.
    let healthy = FaultMask::healthy(&config.fabric);
    let mut builder = System::builder(config.fabric).fault_mask(healthy.clone());
    builder = builder.policy(uaware::PolicySpec::Baseline);
    let sys = builder.build().unwrap();
    assert_eq!(sys.fault_mask(), Some(&healthy));
    // Constructing directly from the config applies its mask.
    let sys = System::new(config.clone(), Box::new(BaselinePolicy));
    assert_eq!(sys.fault_mask(), config.faults.as_ref());
}

#[test]
fn stats_instruction_conservation() {
    // GPP-retired + offloaded = the dynamic instruction count of the
    // equivalent GPP-only run.
    let w = &mibench::suite(21)[6]; // stringsearch
    let cfg = SystemConfig::new(Fabric::be());
    let gpp = run_gpp_only(w.program(), cfg.mem_size, cfg.timing, cfg.max_steps).unwrap();
    let mut sys = System::new(cfg, Box::new(BaselinePolicy));
    sys.run(w.program()).unwrap();
    assert_eq!(sys.stats().total_instrs(), gpp.retired());
}
