//! The flight recorder's determinism contract (DESIGN.md §16): with
//! collection enabled, the folded metrics registry is byte-identical
//! across worker counts, shard splits and kill/resume points, and its
//! counters agree exactly with the typed event stream the observers see.
//! These are the facts CI's `results/metrics.json` byte-identity gate
//! rides on.

use std::path::{Path, PathBuf};

use cgra::Fabric;
use transrec::fleet::{run_fleet_campaign, CampaignOptions, CampaignStatus, FleetPlan};
use transrec::sweep::{run_sweep, run_sweep_observed, SuiteSpec, SweepPlan};
use transrec::telemetry::{EventCounts, ProbeSpec};
use transrec::traffic::{run_serving_campaign, ServePlan, ServeStatus, TrafficSpec};
use uaware::PolicySpec;

/// A 2-policy × 2-workload × 2-fabric plan, mirroring the sweep
/// determinism tests.
fn sweep_plan() -> SweepPlan {
    SweepPlan::new(0xDAC2020)
        .fabric(Fabric::be())
        .fabric(Fabric::bp())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .suites(vec![SuiteSpec::subset("mini", vec![0, 1])]) // bitcount, crc32
}

/// The shared small fleet campaign from the kill/resume tests.
fn fleet_plan() -> FleetPlan {
    FleetPlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .devices(10)
        .lanes(2)
        .shard_devices(2)
        .suite(SuiteSpec::subset("crc", vec![1]))
        .mission_years(1.0)
        .horizon_years(12.0)
}

/// The shared tiny serving campaign from the traffic tests.
fn serve_plan() -> ServePlan {
    ServePlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::HealthAware)
        .traffic(TrafficSpec::Diurnal { per_hour: 40, swing_pct: 60 })
        .suite(SuiteSpec::subset("crc", vec![1]))
        .devices(5)
        .lanes(2)
        .shard_devices(2)
        .clock_hz(1_000)
        .horizon_days(2)
        .pattern_days(2)
}

/// A fresh per-test checkpoint path (removed up front so reruns of a
/// failed test never resume stale state).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("uaware-metrics-tests");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The `metrics` registry a completed campaign left in its final
/// checkpoint, as canonical JSON. Campaigns fold their registry into
/// `obs::global` only on completion, but the checkpoint carries the same
/// registry — reading it here keeps these tests independent of the
/// process-global sink (which other tests in this binary share).
fn checkpoint_metrics(path: &Path) -> String {
    let text = std::fs::read_to_string(path).expect("checkpoint readable");
    let value: serde::Value = serde_json::from_str(&text).expect("checkpoint parses");
    let metrics = value.get("metrics").expect("checkpoint v2 carries a metrics registry");
    serde_json::to_string(metrics).expect("registry serializes")
}

#[test]
fn sweep_registry_is_invariant_under_worker_count_and_observation() {
    let plan = sweep_plan();
    let (runs1, reg1) = run_sweep_observed(&plan, 1).expect("jobs=1 sweep runs");
    let (runs4, reg4) = run_sweep_observed(&plan, 4).expect("jobs=4 sweep runs");
    assert!(!reg1.is_empty(), "an observed sweep must record metrics");
    assert_eq!(
        serde_json::to_string(&reg1).unwrap(),
        serde_json::to_string(&reg4).unwrap(),
        "jobs=1 and jobs=4 must fold byte-identical registries"
    );
    // Observation must not perturb the experiment itself: the observed
    // runs equal the plain run_sweep output byte for byte.
    let plain = run_sweep(&plan, 4).expect("plain sweep runs");
    assert_eq!(
        serde_json::to_string(&runs1).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "collection must not change what the sweep computes"
    );
    assert_eq!(serde_json::to_string(&runs4).unwrap(), serde_json::to_string(&plain).unwrap());
}

#[test]
fn registry_counters_match_the_typed_event_stream() {
    // Every policy family under one observed sweep, with the EventCounts
    // probe riding along: the registry's bridged counters must agree
    // *exactly* with what the typed observers saw — two independent
    // consumers of the same decision sites.
    let plan = SweepPlan::new(0xDAC2020)
        .fabric(Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .policy(PolicySpec::Random { seed: 7 })
        .policy(PolicySpec::HealthAware)
        .policy(PolicySpec::Exact { every: 1 })
        .suites(vec![SuiteSpec::full()])
        .probe(ProbeSpec::EventCounts);
    let (runs, reg) = run_sweep_observed(&plan, 4).expect("observed sweep runs");

    let mut fold = EventCounts::default();
    for run in &runs {
        for bench in &run.benchmarks {
            let counts = bench
                .probes
                .iter()
                .find_map(|p| p.as_event_counts())
                .expect("EventCounts probe reports");
            fold.gpp_retired += counts.gpp_retired;
            fold.offloads_started += counts.offloads_started;
            fold.offloads_completed += counts.offloads_completed;
            fold.offloads_skipped += counts.offloads_skipped;
            fold.allocations_starved += counts.allocations_starved;
            fold.config_loads += counts.config_loads;
            fold.rotations += counts.rotations;
            fold.cache_insertions += counts.cache_insertions;
            fold.cache_evictions += counts.cache_evictions;
        }
    }
    assert_eq!(reg.counter("system.gpp_retired"), fold.gpp_retired);
    assert_eq!(reg.counter("system.offloads"), fold.offloads_started);
    assert_eq!(reg.counter("system.offloads_completed"), fold.offloads_completed);
    assert_eq!(reg.counter("system.offloads_skipped"), fold.offloads_skipped);
    assert_eq!(reg.counter("system.offloads_starved"), fold.allocations_starved);
    assert_eq!(reg.counter("system.config_loads"), fold.config_loads);
    assert_eq!(reg.counter("system.rotations"), fold.rotations);
    assert_eq!(reg.counter("system.cache_inserted"), fold.cache_insertions);
    assert_eq!(reg.counter("system.cache_evicted"), fold.cache_evictions);

    // Each policy fires exactly one decision event per next_offset call,
    // and the system calls next_offset once per offload attempt.
    let decisions: u64 = ["baseline", "rotation", "random", "health-aware", "exact"]
        .iter()
        .map(|p| reg.counter(&format!("alloc.{p}.decisions")))
        .sum();
    assert_eq!(decisions, fold.offloads_started + fold.allocations_starved);
    for policy in ["baseline", "rotation", "random", "health-aware", "exact"] {
        assert!(
            reg.counter(&format!("alloc.{policy}.decisions")) > 0,
            "policy {policy} made no decisions"
        );
    }
    // The exact oracle's solver leaves its search statistics behind.
    assert!(reg.counter("solve.calls") > 0, "exact policy must invoke the solver");
    assert!(reg.counter("solve.expanded") > 0);
    // The DBT and tracker hot paths are metered too.
    assert!(reg.counter("dbt.translate.calls") > 0);
    assert!(reg.counter("dbt.cache.miss") > 0);
    assert!(reg.counter("tracker.executions") > 0);
}

#[test]
fn fleet_campaign_metrics_survive_jobs_shards_and_resume() {
    let options = |path: &Path, stop: Option<usize>| CampaignOptions {
        checkpoint: Some(path.to_path_buf()),
        checkpoint_every_shards: 1,
        stop_after_shards: stop,
        collect_metrics: true,
    };

    // Straight run, one worker.
    let straight = scratch("fleet-straight");
    let status = run_fleet_campaign(&fleet_plan(), 1, &options(&straight, None));
    assert!(matches!(status, Ok(CampaignStatus::Complete(_))));
    let reference = checkpoint_metrics(&straight);
    assert_ne!(reference, "{}", "fleet metrics must not be empty");
    assert!(reference.contains("wear.class.advances"));
    assert!(reference.contains("system.gpp_retired"));

    // Different worker count AND a different shard split: the weighted
    // per-class fold (DESIGN.md §16) keeps the registry byte-identical.
    let split = scratch("fleet-split");
    let status = run_fleet_campaign(&fleet_plan().shard_devices(3), 4, &options(&split, None));
    assert!(matches!(status, Ok(CampaignStatus::Complete(_))));
    assert_eq!(checkpoint_metrics(&split), reference, "shard split changed the registry");

    // Kill after 2 shards, resume under another worker count.
    let resumed = scratch("fleet-resume");
    let status = run_fleet_campaign(&fleet_plan(), 2, &options(&resumed, Some(2)));
    assert!(matches!(status, Ok(CampaignStatus::Paused { .. })));
    let status = run_fleet_campaign(&fleet_plan(), 3, &options(&resumed, None));
    assert!(matches!(status, Ok(CampaignStatus::Complete(_))));
    assert_eq!(checkpoint_metrics(&resumed), reference, "kill/resume changed the registry");

    for path in [straight, split, resumed] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn serve_campaign_metrics_survive_jobs_shards_and_resume() {
    let options = |path: &Path, stop: Option<usize>| CampaignOptions {
        checkpoint: Some(path.to_path_buf()),
        checkpoint_every_shards: 1,
        stop_after_shards: stop,
        collect_metrics: true,
    };

    let straight = scratch("serve-straight");
    let status = run_serving_campaign(&serve_plan(), 1, &options(&straight, None));
    assert!(matches!(status, Ok(ServeStatus::Complete(_))));
    let reference = checkpoint_metrics(&straight);
    assert_ne!(reference, "{}", "serving metrics must not be empty");
    assert!(reference.contains("traffic.requests.arrived"));
    assert!(reference.contains("traffic.latency.cycles"));

    let split = scratch("serve-split");
    let status = run_serving_campaign(&serve_plan().shard_devices(3), 4, &options(&split, None));
    assert!(matches!(status, Ok(ServeStatus::Complete(_))));
    assert_eq!(checkpoint_metrics(&split), reference, "shard split changed the registry");

    let resumed = scratch("serve-resume");
    let status = run_serving_campaign(&serve_plan(), 2, &options(&resumed, Some(1)));
    assert!(matches!(status, Ok(ServeStatus::Paused { .. })));
    let status = run_serving_campaign(&serve_plan(), 3, &options(&resumed, None));
    assert!(matches!(status, Ok(ServeStatus::Complete(_))));
    assert_eq!(checkpoint_metrics(&resumed), reference, "kill/resume changed the registry");

    for path in [straight, split, resumed] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn collection_off_leaves_no_trace() {
    // The default (collection off) must leave the campaign registry empty
    // — the disabled path is a single relaxed atomic load, and nothing
    // downstream should see phantom metrics.
    let path = scratch("fleet-dark");
    let status = run_fleet_campaign(
        &fleet_plan(),
        2,
        &CampaignOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every_shards: 2,
            stop_after_shards: None,
            ..CampaignOptions::default()
        },
    );
    assert!(matches!(status, Ok(CampaignStatus::Complete(_))));
    let metrics = checkpoint_metrics(&path);
    std::fs::remove_file(&path).ok();
    let value: serde::Value = serde_json::from_str(&metrics).unwrap();
    let empty =
        value.get("counters").and_then(|c| c.as_object()).is_some_and(|entries| entries.is_empty());
    assert!(empty, "collection off must record nothing, got {metrics}");
}
