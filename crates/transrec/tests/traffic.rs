//! Property tests for the serving engine's determinism contract
//! (DESIGN.md §13): arrival streams are pure functions of their seed,
//! serving reports are invariant under worker counts and shard splits,
//! and a campaign checkpointed, stopped and resumed at any shard boundary
//! reproduces the straight run byte for byte. These are the facts
//! `results/serving.json`'s byte-identity gate in CI rides on.

use std::path::PathBuf;

use cgra::Fabric;
use proptest::prelude::*;
use transrec::fleet::CampaignOptions;
use transrec::sweep::SuiteSpec;
use transrec::traffic::{
    day_traffic, run_serving, run_serving_campaign, ServePlan, ServeStatus, TrafficSpec,
};
use uaware::PolicySpec;

/// The shared tiny-but-real serving campaign: 5 devices over 2 lanes,
/// 2-device shards (3 shards), two policies, a slow clock so each day
/// carries a handful of requests.
fn plan() -> ServePlan {
    ServePlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::HealthAware)
        .traffic(TrafficSpec::Diurnal { per_hour: 40, swing_pct: 60 })
        .suite(SuiteSpec::subset("crc", vec![1]))
        .devices(5)
        .lanes(2)
        .shard_devices(2)
        .clock_hz(1_000)
        .horizon_days(2)
        .pattern_days(2)
}

/// A fresh per-test checkpoint path (removed up front so reruns of a
/// failed test never resume stale state).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("uaware-serve-tests");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// A small arbitrary traffic spec with bounded-but-varied parameters.
fn any_traffic() -> impl Strategy<Value = TrafficSpec> {
    (0u32..3, 1u64..200, 0u32..=100, 1_001u32..3_000).prop_map(
        |(kind, per_hour, swing_pct, alpha_milli)| match kind {
            0 => TrafficSpec::Steady { per_hour },
            1 => TrafficSpec::Diurnal { per_hour, swing_pct },
            _ => TrafficSpec::Heavy { per_hour, alpha_milli },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An arrival stream is a pure function of `(spec, seed, day)`: the
    /// same triple reproduces it exactly, and it survives a round trip
    /// through the spec's string grammar.
    #[test]
    fn arrival_streams_reproduce_from_their_seed(
        spec in any_traffic(),
        seed in any::<u64>(),
        day in 0u64..5,
    ) {
        let reparsed: TrafficSpec = spec.to_string().parse().expect("grammar round-trips");
        prop_assert_eq!(reparsed, spec);
        let a = day_traffic(&spec, seed, day, 500, 3);
        let b = day_traffic(&reparsed, seed, day, 500, 3);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        prop_assert!(a.iter().all(|r| r.workload < 3 && r.cycle < 500 * 86_400));
    }
}

proptest! {
    // Full campaigns per case: keep the case count low, the plans tiny.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The serving report is invariant under the worker count and the
    /// shard split — both change only scheduling, never bytes.
    #[test]
    fn report_is_invariant_under_jobs_and_shards(
        shard in 1usize..6,
        jobs in 1usize..4,
    ) {
        let reference = run_serving(&plan(), 1).expect("serving runs");
        let split = run_serving(&plan().shard_devices(shard), jobs).expect("serving runs");
        prop_assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&split).unwrap()
        );
    }

    /// A campaign checkpointed and stopped after any number of shards,
    /// then resumed (under a different worker count), emits the byte-
    /// identical report of a straight run — the queue/backpressure state
    /// round-trips through the checkpoint exactly.
    #[test]
    fn stop_and_resume_reproduces_the_straight_run(stop in 0usize..4, jobs in 1usize..4) {
        let straight = run_serving(&plan(), 1).expect("serving runs");
        let path = scratch(&format!("resume-{stop}-{jobs}"));
        let paused = run_serving_campaign(
            &plan(),
            jobs,
            &CampaignOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every_shards: 1,
                stop_after_shards: Some(stop),
                ..CampaignOptions::default()
            },
        )
        .expect("serving runs");
        match paused {
            ServeStatus::Paused { completed_shards, total_shards } => {
                prop_assert_eq!(completed_shards, stop.min(total_shards));
            }
            ServeStatus::Complete(_) => prop_assert!(false, "stop_after must pause"),
        }
        let resumed = run_serving_campaign(
            &plan(),
            4 - jobs,
            &CampaignOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every_shards: 2,
                stop_after_shards: None,
                ..CampaignOptions::default()
            },
        )
        .expect("serving runs");
        let ServeStatus::Complete(report) = resumed else {
            std::fs::remove_file(&path).ok();
            panic!("resume without a stop must complete");
        };
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(
            serde_json::to_string(&straight).unwrap(),
            serde_json::to_string(&*report).unwrap()
        );
    }
}

/// A checkpoint written under one plan must refuse to resume under a
/// materially different one (the fingerprint covers every plan knob).
#[test]
#[should_panic(expected = "different plan")]
fn checkpoint_rejects_a_different_plan() {
    let path = scratch("fingerprint");
    let options = CampaignOptions {
        checkpoint: Some(path.clone()),
        checkpoint_every_shards: 1,
        stop_after_shards: Some(1),
        ..CampaignOptions::default()
    };
    run_serving_campaign(&plan(), 1, &options).expect("serving runs");
    // Same file, different traffic axis: the fingerprint must not match.
    let other = plan().traffic(TrafficSpec::Steady { per_hour: 41 });
    let result = run_serving_campaign(&other, 1, &options);
    std::fs::remove_file(&path).ok();
    drop(result);
}
