//! Kill-and-resume regression tests for the fleet campaign
//! (DESIGN.md §12): a campaign checkpointed and stopped at **any** shard
//! boundary, then reloaded — with any worker count — must produce the
//! byte-identical report (and therefore byte-identical
//! `results/survival.json`) a straight run produces, and a checkpoint must
//! refuse to resume under a different plan.

use std::path::PathBuf;

use cgra::Fabric;
use transrec::fleet::{run_fleet, run_fleet_campaign, CampaignOptions, CampaignStatus, FleetPlan};
use transrec::sweep::SuiteSpec;
use uaware::PolicySpec;

/// The shared small-but-real campaign: 10 devices over 2 workload lanes,
/// 2-device shards (5 shards), two policies.
fn plan() -> FleetPlan {
    FleetPlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .devices(10)
        .lanes(2)
        .shard_devices(2)
        .suite(SuiteSpec::subset("crc", vec![1]))
        .mission_years(1.0)
        .horizon_years(12.0)
}

/// A fresh per-test checkpoint path (removed up front so reruns of a
/// failed test never resume stale state).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("uaware-fleet-resume-tests");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn report_bytes(status: CampaignStatus) -> String {
    match status {
        CampaignStatus::Complete(report) => serde_json::to_string(&*report).unwrap(),
        CampaignStatus::Paused { completed_shards, total_shards } => {
            panic!("campaign unexpectedly paused at {completed_shards}/{total_shards}")
        }
    }
}

#[test]
fn resume_from_every_stop_point_is_byte_identical() {
    let plan = plan();
    let reference = serde_json::to_string(&run_fleet(&plan, 1).expect("straight run")).unwrap();
    let total_shards = plan.devices.div_ceil(plan.shard_devices);
    assert_eq!(total_shards, 5);
    // Kill at every shard boundary — including 0 (only phase 1 done) and
    // total (all work done before the "kill") — and resume with a worker
    // count different from the one that wrote the checkpoint.
    for stop in 0..=total_shards {
        let checkpoint = scratch(&format!("stop-{stop}"));
        let (stop_jobs, resume_jobs) = ([1, 4, 0][stop % 3], [4, 0, 1][stop % 3]);
        let options = CampaignOptions {
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every_shards: 1,
            stop_after_shards: Some(stop),
            ..CampaignOptions::default()
        };
        match run_fleet_campaign(&plan, stop_jobs, &options).expect("partial run") {
            CampaignStatus::Paused { completed_shards, total_shards: reported } => {
                assert!(stop < total_shards, "a full run must not pause");
                assert_eq!((completed_shards, reported), (stop, total_shards));
            }
            CampaignStatus::Complete(_) => {
                assert_eq!(stop, total_shards, "an early stop must pause")
            }
        }
        let resumed = run_fleet_campaign(
            &plan,
            resume_jobs,
            &CampaignOptions { checkpoint: Some(checkpoint.clone()), ..CampaignOptions::default() },
        )
        .expect("resumed run");
        assert_eq!(
            report_bytes(resumed),
            reference,
            "resume after stopping at shard {stop} diverged"
        );
        let _ = std::fs::remove_file(&checkpoint);
    }
}

#[test]
fn repeated_kills_across_wave_widths_are_byte_identical() {
    let plan = plan();
    let reference = serde_json::to_string(&run_fleet(&plan, 4).expect("straight run")).unwrap();
    // Two kills (after 1 and 3 shards) with a 2-shard checkpoint wave,
    // then run to completion: three processes, one report.
    let checkpoint = scratch("repeated-kills");
    for (stop, jobs) in [(Some(1), 1), (Some(3), 0)] {
        let options = CampaignOptions {
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every_shards: 2,
            stop_after_shards: stop,
            ..CampaignOptions::default()
        };
        let status = run_fleet_campaign(&plan, jobs, &options).expect("partial run");
        assert!(matches!(status, CampaignStatus::Paused { .. }));
    }
    let finished = run_fleet_campaign(
        &plan,
        4,
        &CampaignOptions {
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every_shards: 2,
            stop_after_shards: None,
            ..CampaignOptions::default()
        },
    )
    .expect("final run");
    assert_eq!(report_bytes(finished), reference);
    let _ = std::fs::remove_file(&checkpoint);
}

#[test]
fn shard_split_and_worker_matrix_is_byte_identical() {
    // The no-checkpoint half of the determinism contract: every
    // (shard size × worker count) cell serializes to the same bytes.
    // The report must not leak the split (no shard field), only the lanes.
    let reference =
        serde_json::to_string(&run_fleet(&plan().shard_devices(10), 1).expect("one shard"))
            .unwrap();
    for shard in [1, 2, 5] {
        for jobs in [1, 4, 0] {
            let report = run_fleet(&plan().shard_devices(shard), jobs).expect("split run");
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                reference,
                "shard_devices={shard} jobs={jobs} diverged"
            );
        }
    }
}

#[test]
#[should_panic(expected = "belongs to a different plan")]
fn checkpoints_refuse_to_resume_a_different_plan() {
    let checkpoint = scratch("wrong-plan");
    let options = CampaignOptions {
        checkpoint: Some(checkpoint.clone()),
        checkpoint_every_shards: 1,
        stop_after_shards: Some(1),
        ..CampaignOptions::default()
    };
    let paused = run_fleet_campaign(&plan(), 1, &options).expect("partial run");
    assert!(matches!(paused, CampaignStatus::Paused { .. }));
    // Same path, different fleet: the fingerprint must reject it loudly.
    let other = plan().devices(12);
    let _ = run_fleet_campaign(&other, 1, &options);
}
