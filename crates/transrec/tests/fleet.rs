//! Acceptance regression tests for the closed-loop lifetime engine
//! (DESIGN.md §11):
//!
//! 1. open loop (faults disabled): the wear-state lifetime of the worst FU
//!    on the **full mibench suite** matches the analytic
//!    `CalibratedAging::lifetime_years(worst_u)` within 1e-6;
//! 2. closed loop (faults injected): health-aware reallocation outlives
//!    the corner-pinned baseline's MTTF;
//! 3. `run_fleet` is byte-identical for every worker count;
//! 4. equivalence classes (DESIGN.md §12): a fleet of identical devices
//!    shares exactly one simulation per policy, and seeded defects fork
//!    classes without changing any per-device result versus a solo run.

use cgra::Fabric;
use lifetime::DeviceLifetime;
use nbti::CalibratedAging;
use transrec::fleet::{run_fleet, FleetPlan};
use transrec::sweep::SuiteSpec;
use transrec::{System, SystemConfig};
use uaware::{PolicySpec, UtilizationTracker};

/// Runs the full ten-benchmark suite once and returns the merged tracker
/// plus the total system cycles — one "mission" of the fleet engine.
fn full_suite_mission(config: &SystemConfig, spec: &PolicySpec) -> (UtilizationTracker, u64) {
    let mut merged = UtilizationTracker::new(&config.fabric);
    let mut cycles = 0u64;
    for w in mibench::suite(0xDAC2020) {
        let mut system = System::new(config.clone(), spec.build());
        system.run(w.program()).expect("suite runs");
        w.verify(system.cpu()).expect("oracle");
        cycles += system.stats().total_cycles();
        merged.merge(system.tracker());
    }
    (merged, cycles)
}

#[test]
fn open_loop_wear_lifetime_matches_the_analytic_projection() {
    // Acceptance criterion: with faults disabled, the wear-state lifetime
    // of the worst FU equals CalibratedAging::lifetime_years(worst_u)
    // within 1e-6 on the full mibench suite.
    let config = SystemConfig::new(Fabric::be());
    let aging = CalibratedAging::default();
    let spec = PolicySpec::rotation();
    let (tracker, cycles) = full_suite_mission(&config, &spec);
    let duty = tracker.duty_cycles(cycles);
    let worst_u = duty.max();
    assert!(worst_u > 0.3, "rotation's worst duty on BE should be ~0.42, got {worst_u}");
    assert_eq!(duty, tracker.utilization(), "duty is the paper's utilization metric");

    // Drive the wear state through unevenly sized missions; composition
    // must land exactly on the analytic curve.
    let mut device = DeviceLifetime::new(&config.fabric, aging, false);
    for dt in [0.25, 1.0, 0.125, 2.0, 0.5] {
        device.advance_mission(&duty, dt);
    }
    let analytic = aging.lifetime_years(worst_u);
    let wear_state = device.projected_first_failure(&duty);
    assert!(
        (wear_state - analytic).abs() < 1e-6,
        "wear-state lifetime {wear_state} vs analytic {analytic}"
    );

    // And the interpolated FuFailed event of the worst FU lands on the
    // same instant when the missions actually cross it.
    let mut device = DeviceLifetime::new(&config.fabric, aging, false);
    let mut first = None;
    while first.is_none() && device.elapsed_years() < 2.0 * analytic {
        first = device.advance_mission(&duty, 0.5).first().map(|f| f.at_years);
    }
    let first = first.expect("worst FU must cross EOL within twice its lifetime");
    assert!((first - analytic).abs() < 1e-6, "event at {first} vs analytic {analytic}");
}

#[test]
fn closed_loop_health_aware_outlives_baseline_mttf() {
    // Acceptance criterion: a fault-injected run shows health-aware
    // outliving baseline MTTF. bitcount's small footprints let the oracle
    // spread stress (worst duty ~0.22 vs the baseline's pinned 1.0).
    let plan = FleetPlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::HealthAware)
        .devices(2)
        .suite(SuiteSpec::subset("bitcount", vec![0]))
        .mission_years(0.5)
        .horizon_years(16.0);
    let report = run_fleet(&plan, 1).expect("fleet runs");
    assert!(report.inject_faults);
    let base = report.policy("baseline").expect("baseline fleet");
    let oracle = report.policy("health-aware").expect("health-aware fleet");
    // Every baseline device dies with its corner, shortly after 3 years.
    assert_eq!(base.stats.deaths, plan.devices);
    for device in &base.devices {
        let death = device.death_years.expect("baseline corner death");
        assert!((2.9..=4.0).contains(&death), "baseline died at {death}");
    }
    assert!(
        oracle.stats.mttf_years > base.stats.mttf_years,
        "health-aware MTTF {} must exceed baseline {}",
        oracle.stats.mttf_years,
        base.stats.mttf_years
    );
    // The oracle's first failures land far beyond the baseline's.
    for device in &oracle.devices {
        if let Some(first) = device.first_failure_years {
            assert!(first > 10.0, "health-aware first failure at {first}");
        }
    }
    // Survival: at 5 years the baseline fleet is gone, the oracle's is not.
    assert_eq!(base.survival.alive_at(5.0), 0.0);
    assert_eq!(oracle.survival.alive_at(5.0), 1.0);
}

#[test]
fn fleet_reports_are_identical_for_every_worker_count() {
    let plan = FleetPlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .devices(3)
        .suite(SuiteSpec::subset("crc", vec![1]))
        .mission_years(1.0)
        .horizon_years(12.0);
    let sequential = run_fleet(&plan, 1).expect("sequential fleet");
    let sharded = run_fleet(&plan, 4).expect("sharded fleet");
    let inline = run_fleet(&plan, 0).expect("default-pool fleet");
    assert_eq!(sequential, sharded);
    assert_eq!(sequential, inline);
    // Byte-identical all the way into the serialized artefact.
    let a = serde_json::to_string(&sequential).unwrap();
    let b = serde_json::to_string(&sharded).unwrap();
    assert_eq!(a, b);
}

/// The solo fleet the class tests compare against: one device on one lane,
/// optionally with one seeded manufacturing defect.
fn solo_plan(defect: Option<(u32, u32)>) -> FleetPlan {
    let plan = FleetPlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .devices(1)
        .lanes(1)
        .suite(SuiteSpec::subset("crc", vec![1]))
        .mission_years(1.0)
        .horizon_years(12.0);
    match defect {
        Some((row, col)) => plan.defect(0, row, col),
        None => plan,
    }
}

#[test]
fn identical_devices_share_exactly_one_simulation_per_policy() {
    // 40 identical devices on one workload lane collapse into one
    // equivalence class: one reference simulation per policy, with the
    // simulation count pinned *exactly* — not "at most" — in the report,
    // and every replayed device landing where the solo device lands.
    let solo = run_fleet(&solo_plan(None), 1).expect("solo fleet");
    let fleet_plan = solo_plan(None).devices(40).detail_devices(40);
    let fleet = run_fleet(&fleet_plan, 4).expect("shared-class fleet");
    for (shared, alone) in fleet.policies.iter().zip(&solo.policies) {
        assert_eq!(shared.classes, 1, "{}: one lane, no defects, one class", shared.policy);
        let reference = &alone.devices[0];
        assert_eq!(
            shared.simulated_missions, reference.simulated_missions,
            "{}: the class re-simulates exactly as often as the solo device",
            shared.policy
        );
        assert_eq!(shared.total_missions, 40 * reference.missions);
        assert_eq!(shared.devices.len(), 40);
        for device in &shared.devices {
            assert_eq!(device.seed, reference.seed, "one lane, one workload seed");
            assert_eq!(device.death_years, reference.death_years);
            assert_eq!(device.first_failure_years, reference.first_failure_years);
            assert_eq!(device.missions, reference.missions);
            assert_eq!(device.failures, reference.failures);
            // Only the class representative (device 0) carries the
            // simulation count; every other member reports zero.
            let expected = if device.device == 0 { reference.simulated_missions } else { 0 };
            assert_eq!(device.simulated_missions, expected);
        }
        assert_eq!(shared.stats.devices, 40);
        assert_eq!(shared.survival.alive_at(0.0), 1.0);
    }
}

#[test]
fn seeded_defects_fork_classes_without_changing_per_device_results() {
    // Device 1 of three otherwise identical devices ships with a dead
    // corner FU. The fleet must fork it into its own class — and both
    // classes must reproduce their solo-simulated twins exactly.
    let healthy = run_fleet(&solo_plan(None), 1).expect("healthy solo");
    let defective = run_fleet(&solo_plan(Some((0, 0))), 1).expect("defective solo");
    let fleet_plan = solo_plan(None).devices(3).defect(1, 0, 0);
    let fleet = run_fleet(&fleet_plan, 1).expect("forked fleet");
    for ((forked, clean), broken) in
        fleet.policies.iter().zip(&healthy.policies).zip(&defective.policies)
    {
        assert_eq!(forked.classes, 2, "{}: the defect forks one extra class", forked.policy);
        assert_eq!(
            forked.simulated_missions,
            clean.simulated_missions + broken.simulated_missions,
            "{}: one simulation per class, nothing more",
            forked.policy
        );
        let outcomes = &forked.devices;
        assert_eq!(outcomes.len(), 3);
        for (device, reference) in
            [(&outcomes[0], clean), (&outcomes[1], broken), (&outcomes[2], clean)]
        {
            let reference = &reference.devices[0];
            assert_eq!(device.death_years, reference.death_years);
            assert_eq!(device.first_failure_years, reference.first_failure_years);
            assert_eq!(device.missions, reference.missions);
            assert_eq!(device.failures, reference.failures);
        }
        // The defect actually mattered: the corner-dead device diverges
        // from its healthy siblings under the corner-pinned baseline.
        if forked.policy == "baseline" {
            assert_ne!(
                outcomes[1].death_years, outcomes[0].death_years,
                "a dead corner must change the baseline's fate"
            );
        }
    }
}
