//! Regenerates paper Fig. 1: FU utilization of a 1D 4×8 CGRA under
//! traditional (greedy, corner-anchored) mapping.
//!
//! Accepts the shared `--jobs <n>` flag for symmetry with the other
//! runners (a single-cell sweep gains nothing from it).

use bench::{apply_cli_flags, fig1, save_json, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = fig1(&ctx);
    println!("== Fig. 1: utilization of a {} fabric, baseline allocation ==", r.fabric);
    println!("{}", r.heatmap);
    println!("max FU utilization: {:.1}% (paper: 100%)", 100.0 * r.max);
    println!("min FU utilization: {:.1}% (paper: 1%)", 100.0 * r.min);
    save_json("fig1", &r);
}
