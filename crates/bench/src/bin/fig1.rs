//! Regenerates paper Fig. 1: FU utilization of a 1D 4×8 CGRA under
//! traditional (greedy, corner-anchored) mapping.

use bench::{fig1, save_json, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::default();
    let r = fig1(&ctx);
    println!("== Fig. 1: utilization of a {}x{} fabric, baseline allocation ==", r.rows, r.cols);
    println!("{}", r.heatmap);
    println!("max FU utilization: {:.1}% (paper: 100%)", 100.0 * r.max);
    println!("min FU utilization: {:.1}% (paper: 1%)", 100.0 * r.min);
    save_json("fig1", &r);
}
