//! The optimality-gap table: every heuristic policy measured against the
//! exact branch-and-bound oracle (DESIGN.md §15).
//!
//! Sweeps the default gap layouts (or the repeatable `--fabric <spec>`
//! overrides) × injected fault densities under the baseline, the context
//! policy series (`--policy`) and the `exact` oracle, printing a
//! per-cell table and writing `results/gap.json`. `--jobs <n>` shards
//! the sweep; the output is byte-identical for every worker count.

use bench::{apply_cli_flags, gap, save_json, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = gap(&ctx);
    println!("== Optimality gap: policies vs the {} oracle ==", r.exact_policy);
    println!(
        "{:<20} {:>7} {:<24} {:>7} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "fabric",
        "density",
        "policy",
        "speedup",
        "worstutil",
        "life(y)",
        "dutygap",
        "lifegap",
        "starved"
    );
    for row in &r.rows {
        assert!(row.verified, "oracle failed on {} under {}", row.fabric, row.policy);
        println!(
            "{:<20} {:>6.1}% {:<24} {:>7.2} {:>8.1}% {:>8.2} {:>8.3} {:>8.3} {:>7}",
            row.fabric,
            100.0 * row.fault_density,
            row.policy,
            row.speedup,
            100.0 * row.worst_utilization,
            row.lifetime_years,
            row.duty_gap,
            row.lifetime_gap,
            row.offloads_starved,
        );
    }
    save_json("gap", &r);
}
