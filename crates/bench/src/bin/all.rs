//! Regenerates every table and figure in one go (the full evaluation).
//!
//! Pass `--jobs <n>` to shard every figure's sweep across n workers
//! (default: all cores; `--jobs 1` is the sequential path — CI diffs the
//! two `results/` trees to enforce byte-identical output), the usual
//! repeatable `--policy <spec>` / `--fabric <spec>` flags to swap the
//! evaluated policy series and fabric layouts, and `--devices <n>` to
//! size the fleet behind `results/survival.json`.

use bench::*;

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices = match parse_devices_flag(&args) {
        Ok(d) => d.unwrap_or(8),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("[fig1]");
    save_json("fig1", &fig1(&ctx));
    eprintln!("[fig6]");
    save_json("fig6", &fig6(&ctx));
    eprintln!("[fig7]");
    save_json("fig7", &fig7(&ctx));
    eprintln!("[fig8]");
    let f8 = fig8(&ctx);
    save_json("fig8", &f8);
    eprintln!("[convergence]");
    save_json("convergence", &convergence(&f8));
    eprintln!("[table1]");
    save_json("table1", &table1(&ctx));
    eprintln!("[layout]");
    save_json("layout", &layout(&ctx));
    eprintln!("[gap]");
    save_json("gap", &gap(&ctx));
    eprintln!("[table2]");
    save_json("table2", &table2(&ctx));
    eprintln!("[survival]");
    save_json("survival", &fig_lifetime(&ctx, devices));
    eprintln!("[serving]");
    save_json("serving", &fleet_serve(&ctx, devices, 30));
    eprintln!("done: results/*.json");
}
