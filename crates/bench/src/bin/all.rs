//! Regenerates every table and figure in one go (the full evaluation).
//!
//! Pass `--jobs <n>` to shard every figure's sweep across n workers
//! (default: all cores; `--jobs 1` is the sequential path — CI diffs the
//! two `results/` trees to enforce byte-identical output), the usual
//! repeatable `--policy <spec>` / `--fabric <spec>` flags to swap the
//! evaluated policy series and fabric layouts, and `--devices <n>` to
//! size the fleet behind `results/survival.json`.
//!
//! The full evaluation always runs with the flight recorder on
//! (DESIGN.md §16): `results/metrics.json` holds the deterministic
//! counter registry (byte-identical for every `--jobs` value — CI diffs
//! it with the rest of the tree) and `results/profile.json` the
//! wall-clock span tree per experiment phase (nondeterministic by nature,
//! excluded from the diff).

use bench::*;
use tracing::{span, Level};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    ctx.collect_metrics = true;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices = match parse_devices_flag(&args) {
        Ok(d) => d.unwrap_or(8),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    obs::global::reset();
    let profiler = obs::Profiler::new();
    tracing::with_default(profiler.dispatch(), || {
        let phase = |name: &'static str| {
            eprintln!("[{name}]");
            span!(Level::INFO, name).entered()
        };
        {
            let _p = phase("fig1");
            save_json("fig1", &fig1(&ctx));
        }
        {
            let _p = phase("fig6");
            save_json("fig6", &fig6(&ctx));
        }
        {
            let _p = phase("fig7");
            save_json("fig7", &fig7(&ctx));
        }
        {
            let _p = phase("fig8");
            let f8 = fig8(&ctx);
            save_json("fig8", &f8);
            eprintln!("[convergence]");
            save_json("convergence", &convergence(&f8));
        }
        {
            let _p = phase("table1");
            save_json("table1", &table1(&ctx));
        }
        {
            let _p = phase("layout");
            save_json("layout", &layout(&ctx));
        }
        {
            let _p = phase("gap");
            save_json("gap", &gap(&ctx));
        }
        {
            let _p = phase("table2");
            save_json("table2", &table2(&ctx));
        }
        {
            let _p = phase("survival");
            save_json("survival", &fig_lifetime(&ctx, devices));
        }
        {
            let _p = phase("serving");
            save_json("serving", &fleet_serve(&ctx, devices, 30));
        }
    });
    save_json("metrics", &obs::global::snapshot());
    save_json("profile", &profiler.report());
    eprintln!("done: results/*.json");
}
