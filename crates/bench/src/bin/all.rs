//! Regenerates every table and figure in one go (the full evaluation).

use bench::*;

fn main() {
    let ctx = ExperimentContext::default();
    eprintln!("[fig1]");
    save_json("fig1", &fig1(&ctx));
    eprintln!("[fig6]");
    save_json("fig6", &fig6(&ctx));
    eprintln!("[fig7]");
    save_json("fig7", &fig7(&ctx));
    eprintln!("[fig8]");
    save_json("fig8", &fig8(&ctx));
    eprintln!("[table1]");
    save_json("table1", &table1(&ctx));
    eprintln!("[table2]");
    save_json("table2", &table2(&ctx));
    eprintln!("done: results/*.json");
}
