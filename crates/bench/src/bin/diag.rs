//! Diagnostic: per-benchmark cycle breakdown on the BE fabric.
//!
//! Pass `--policy <spec>` to diagnose a different allocation policy
//! (default: baseline), e.g. `diag -- --policy rotation:snake@per-load`.

use bench::parse_policy_flags;
use cgra::Fabric;
use transrec::{run_gpp_only, System, SystemConfig};
use uaware::PolicySpec;

fn policy_from_args() -> PolicySpec {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = parse_policy_flags(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    specs.first().copied().unwrap_or(PolicySpec::Baseline)
}

fn main() {
    let spec = policy_from_args();
    let cfg = SystemConfig::new(Fabric::be());
    println!("policy: {spec}");
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "bench",
        "gpp-only",
        "system",
        "speedup",
        "cover",
        "gppcyc",
        "exec",
        "reconf",
        "xfer",
        "rot",
        "offl",
        "skip"
    );
    for w in mibench::suite(0xDAC2020) {
        let gpp = run_gpp_only(w.program(), cfg.mem_size, cfg.timing, cfg.max_steps).unwrap();
        let mut sys = System::builder(cfg.fabric).policy(spec).build().unwrap();
        sys.run(w.program()).unwrap();
        w.verify(sys.cpu()).unwrap();
        let s = *sys.stats();
        let cover = s.offloaded_instrs as f64 / s.total_instrs() as f64;
        println!(
            "{:<16} {:>9} {:>9} {:>7.2} {:>5.1}% {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
            w.name(),
            gpp.cycles(),
            s.total_cycles(),
            gpp.cycles() as f64 / s.total_cycles() as f64,
            100.0 * cover,
            s.gpp_cycles,
            s.cgra_exec_cycles,
            s.reconfig_cycles,
            s.transfer_cycles,
            s.rotate_cycles,
            s.offloads,
            s.offloads_skipped,
        );
    }
}
