//! Diagnostic: per-benchmark cycle breakdown on the BE fabric.

use cgra::Fabric;
use transrec::{run_gpp_only, System, SystemConfig};
use uaware::BaselinePolicy;

fn main() {
    let cfg = SystemConfig::new(Fabric::be());
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "bench",
        "gpp-only",
        "system",
        "speedup",
        "cover",
        "gppcyc",
        "exec",
        "reconf",
        "xfer",
        "rot",
        "offl",
        "skip"
    );
    for w in mibench::suite(0xDAC2020) {
        let gpp = run_gpp_only(w.program(), cfg.mem_size, cfg.timing, cfg.max_steps).unwrap();
        let mut sys = System::new(cfg.clone(), Box::new(BaselinePolicy));
        sys.run(w.program()).unwrap();
        w.verify(sys.cpu()).unwrap();
        let s = *sys.stats();
        let cover = s.offloaded_instrs as f64 / s.total_instrs() as f64;
        println!(
            "{:<16} {:>9} {:>9} {:>7.2} {:>5.1}% {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
            w.name(),
            gpp.cycles(),
            s.total_cycles(),
            gpp.cycles() as f64 / s.total_cycles() as f64,
            100.0 * cover,
            s.gpp_cycles,
            s.cgra_exec_cycles,
            s.reconfig_cycles,
            s.transfer_cycles,
            s.rotate_cycles,
            s.offloads,
            s.offloads_skipped,
        );
    }
}
