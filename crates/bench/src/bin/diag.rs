//! Diagnostic: per-benchmark cycle breakdown on the BE fabric, plus the
//! flight recorder's metrics registry for the diagnosed run (DBT hit
//! rate, starvation counts, exact-solver node counts — DESIGN.md §16).
//!
//! Pass `--policy <spec>` to diagnose a different allocation policy
//! (default: baseline), e.g. `diag -- --policy rotation:snake@per-load`,
//! `--fabric <spec>` to diagnose a different fabric layout (default: BE;
//! DESIGN.md §14), e.g. `diag -- --fabric 4x8:het-checker`, and
//! `--jobs <n>` to size the sweep pool (one cell, so the flag only
//! matters for the GPP-reference phase).

use bench::{parse_fabric_flags, parse_jobs_flag, parse_policy_flags};
use cgra::Fabric;
use transrec::{run_sweep_observed, SweepPlan};
use uaware::PolicySpec;

fn flags_from_args() -> (PolicySpec, Fabric, usize) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = parse_policy_flags(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let fabrics = parse_fabric_flags(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let fabric = fabrics.first().map_or_else(Fabric::be, |s| {
        s.build().unwrap_or_else(|e| {
            eprintln!("error: --fabric {s}: {e}");
            std::process::exit(2);
        })
    });
    let jobs = parse_jobs_flag(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    (specs.first().copied().unwrap_or(PolicySpec::Baseline), fabric, jobs.unwrap_or(0))
}

fn main() {
    let (spec, fabric, jobs) = flags_from_args();
    let plan = SweepPlan::new(0xDAC2020).fabric(fabric).policy(spec);
    println!("policy: {spec}");
    println!("fabric: {}", cgra::FabricSpec::from_fabric(&fabric));
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "bench",
        "gpp-only",
        "system",
        "speedup",
        "cover",
        "gppcyc",
        "exec",
        "reconf",
        "xfer",
        "rot",
        "offl",
        "skip",
        "starv"
    );
    let (runs, metrics) = run_sweep_observed(&plan, jobs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for b in &runs[0].benchmarks {
        assert!(b.verified, "oracle failed on {}", b.name);
        let s = &b.stats;
        let cover = s.offloaded_instrs as f64 / s.total_instrs() as f64;
        println!(
            "{:<16} {:>9} {:>9} {:>7.2} {:>5.1}% {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
            b.name,
            b.gpp_cycles,
            b.system_cycles,
            b.speedup(),
            100.0 * cover,
            s.gpp_cycles,
            s.cgra_exec_cycles,
            s.reconfig_cycles,
            s.transfer_cycles,
            s.rotate_cycles,
            s.offloads,
            s.offloads_skipped,
            s.offloads_starved,
        );
    }
    let hits = metrics.counter("dbt.cache.hit");
    let lookups = hits + metrics.counter("dbt.cache.miss");
    println!("\nmetrics registry (flight recorder, DESIGN.md §16):");
    if lookups > 0 {
        println!("  dbt cache hit rate: {:.1}%", 100.0 * hits as f64 / lookups as f64);
    }
    print!("{}", metrics.render_table());
}
