//! The layout explorer: heterogeneous fabric mixes × policies
//! (DESIGN.md §14).
//!
//! Sweeps the default layout mixes (or the repeatable `--fabric <spec>`
//! overrides) against the baseline plus the context policy series
//! (`--policy`), printing a per-layout table and writing
//! `results/layout.json`. `--jobs <n>` shards the sweep; the output is
//! byte-identical for every worker count.

use bench::{apply_cli_flags, layout, save_json, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = layout(&ctx);
    println!("== Layout explorer: fabric mixes x policies (proposed: {}) ==", r.proposed_policy);
    println!(
        "{:<24} {:<24} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "fabric", "policy", "speedup", "worstutil", "meanutil", "wear", "life(y)", "starved"
    );
    for row in &r.rows {
        assert!(row.verified, "oracle failed on {} under {}", row.fabric, row.policy);
        println!(
            "{:<24} {:<24} {:>7.2} {:>8.1}% {:>8.1}% {:>9.4} {:>9.2} {:>7}",
            row.fabric,
            row.policy,
            row.speedup,
            100.0 * row.worst_utilization,
            100.0 * row.mean_utilization,
            row.worst_wear,
            row.lifetime_years,
            row.offloads_starved,
        );
    }
    save_json("layout", &r);
}
