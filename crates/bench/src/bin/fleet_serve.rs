//! Live fleet serving with replacement economics (DESIGN.md §13): N
//! devices per (traffic × policy) cell queue and serve their lane's
//! seeded request stream — diurnal and heavy-tailed profiles by default —
//! with utilization-aware backpressure shedding or deferring offloads
//! when the tracker shows hot FUs, per-day wear folding into the lifetime
//! engine, and dead devices retired and replaced at cost. Emits
//! `results/serving.json` with per-cell fleet MTTF, p50/p95/p99 tail
//! latency, shed rate, and replacement counts/spend.
//!
//! Flags: `--devices <n>` sizes the fleet (default 8), `--horizon-days
//! <n>` the serving horizon (default 30), repeatable `--traffic <spec>`
//! replaces the profile mix (`steady@rph-N`, `diurnal@rph-N+swing-P`,
//! `heavy@rph-N+alpha-M`), `--lanes <n>` the distinct workload/traffic
//! seeds (default `min(devices, 4)`), `--shard <n>` the streaming shard
//! size, and the usual repeatable `--policy <spec>` / `--jobs <n>` apply.
//! Campaign control: `--checkpoint <path>` persists (and resumes)
//! progress, `--checkpoint-every <n>` sets the wave width, `--stop-after
//! <n>` pauses after n shards. `--metrics` turns the flight recorder on
//! (DESIGN.md §16): a completed campaign also writes
//! `results/metrics.json`. The report — and the metrics registry — is
//! byte-identical for every worker count, shard split and kill/resume
//! point — CI diffs them all.

use bench::{
    apply_cli_flags, default_serve_lanes, fleet_serve_campaign, parse_checkpoint_every_flag,
    parse_checkpoint_flag, parse_devices_flag, parse_horizon_days_flag, parse_lanes_flag,
    parse_shard_flag, parse_stop_after_flag, parse_traffic_flags, save_json, ExperimentContext,
};
use transrec::{CampaignOptions, ServeReport, ServeStatus};

/// Default device instances per (traffic × policy) cell.
const DEFAULT_DEVICES: usize = 8;

/// Default serving horizon in days.
const DEFAULT_HORIZON_DAYS: usize = 30;

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_devices_flag(&args).and_then(|devices| {
        Ok((
            devices.unwrap_or(DEFAULT_DEVICES),
            parse_horizon_days_flag(&args)?.unwrap_or(DEFAULT_HORIZON_DAYS) as u64,
            parse_traffic_flags(&args)?,
            parse_lanes_flag(&args)?,
            parse_shard_flag(&args)?,
            CampaignOptions {
                checkpoint: parse_checkpoint_flag(&args)?,
                checkpoint_every_shards: parse_checkpoint_every_flag(&args)?.unwrap_or(0),
                stop_after_shards: parse_stop_after_flag(&args)?,
                collect_metrics: ctx.collect_metrics,
            },
        ))
    });
    let (devices, horizon_days, traffic, lanes, shard, options) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let lanes = lanes.unwrap_or_else(|| default_serve_lanes(devices));
    let traffic = if traffic.is_empty() { None } else { Some(traffic) };
    obs::global::reset();

    match fleet_serve_campaign(&ctx, devices, lanes, horizon_days, traffic, shard, &options) {
        ServeStatus::Complete(report) => {
            print_report(&report);
            save_json("serving", &*report);
            // Paused campaigns fold nothing into the global registry, so
            // metrics.json — like serving.json — only exists once the
            // campaign completes (the CI resume leg asserts both).
            if ctx.collect_metrics {
                save_json("metrics", &obs::global::snapshot());
            }
        }
        ServeStatus::Paused { completed_shards, total_shards } => {
            println!(
                "== serving campaign paused: {completed_shards}/{total_shards} shards complete \
                 (resume with the same --checkpoint) =="
            );
        }
    }
}

fn print_report(r: &ServeReport) {
    println!(
        "== fleet serving: {} devices/cell over {} lane(s), {}x{} fabric, {} mix, {} days \
         ({}y deployed), {} Hz ==",
        r.devices, r.lanes, r.rows, r.cols, r.suite, r.horizon_days, r.horizon_years, r.clock_hz
    );
    println!(
        "{:<26} {:<26} {:>9} {:>8} {:>8} {:>8} {:>7} {:>6} {:>10}",
        "traffic", "policy", "MTTF[y]", "p50[ms]", "p95[ms]", "p99[ms]", "shed%", "repl", "cost[$]"
    );
    for cell in &r.cells {
        println!(
            "{:<26} {:<26} {:>9.2} {:>8.1} {:>8.1} {:>8.1} {:>6.2}% {:>6} {:>10.2}",
            cell.traffic,
            cell.policy,
            cell.stats.mttf_years,
            cell.p50_ms,
            cell.p95_ms,
            cell.p99_ms,
            100.0 * cell.shed_rate,
            cell.replacements,
            cell.replacement_cost_cents as f64 / 100.0,
        );
    }
    for traffic in
        r.cells.iter().map(|c| c.traffic.clone()).collect::<std::collections::BTreeSet<_>>()
    {
        let base = r.cell(&traffic, "baseline");
        let best = r
            .cells
            .iter()
            .filter(|c| c.traffic == traffic && c.policy != "baseline")
            .max_by(|a, b| a.stats.mttf_years.total_cmp(&b.stats.mttf_years));
        if let (Some(base), Some(best)) = (base, best) {
            println!(
                "{traffic}: {} vs baseline — MTTF {:.2}x, p95 {:.1} -> {:.1} ms, \
                 replacements {} -> {}",
                best.policy,
                best.stats.mttf_years / base.stats.mttf_years,
                base.p95_ms,
                best.p95_ms,
                base.replacements,
                best.replacements,
            );
        }
    }
}
