//! Regenerates paper Table I: utilization and lifetime improvements for the
//! BE, BP and BU scenarios.

use bench::{save_json, table1, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::default();
    let r = table1(&ctx);
    println!("== Table I: utilization and lifetime improvements ==");
    println!(
        "{:<9} {:>9} {:>15} {:>15} {:>10} {:>12} {:>12}",
        "Scenario",
        "Avg.Util",
        "BaselineWorst",
        "ProposedWorst",
        "Improv.",
        "BaseLife[y]",
        "PropLife[y]"
    );
    for row in &r.rows {
        println!(
            "{:<9} {:>8.1}% {:>14.1}% {:>14.1}% {:>9.2}x {:>12.2} {:>12.2}",
            row.scenario,
            100.0 * row.avg_util,
            100.0 * row.baseline_worst,
            100.0 * row.proposed_worst,
            row.lifetime_improvement,
            row.baseline_lifetime_years,
            row.proposed_lifetime_years,
        );
    }
    println!();
    println!(
        "paper: BE 39.7%/94.5%/41.1%/2.29x, BP 17.1%/98.1%/22.4%/4.37x, BU 8.5%/98.1%/12.3%/7.97x"
    );
    save_json("table1", &r);
}
