//! Regenerates paper Table I: utilization and lifetime improvements for the
//! BE, BP and BU scenarios, one row per scenario × policy.
//!
//! Pass `--policy <spec>` (repeatable) to evaluate a custom policy set,
//! e.g. `table1 -- --policy rotation:snake@per-load --policy random:7`, and
//! `--jobs <n>` to shard the scenario x policy grid (default: all cores;
//! `--jobs 1` and `--jobs 4` produce byte-identical JSON).

use bench::{apply_cli_flags, save_json, table1, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = table1(&ctx);
    println!("== Table I: utilization and lifetime improvements ==");
    println!(
        "{:<9} {:<26} {:>9} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "Scenario",
        "Policy",
        "Avg.Util",
        "BaseWorst",
        "PolWorst",
        "Improv.",
        "BaseLife[y]",
        "PolLife[y]"
    );
    for row in &r.rows {
        println!(
            "{:<9} {:<26} {:>8.1}% {:>9.1}% {:>9.1}% {:>8.2}x {:>12.2} {:>12.2}",
            row.scenario,
            row.policy,
            100.0 * row.avg_util,
            100.0 * row.baseline_worst,
            100.0 * row.policy_worst,
            row.lifetime_improvement,
            row.baseline_lifetime_years,
            row.policy_lifetime_years,
        );
    }
    println!();
    println!(
        "paper (rotation:snake@per-exec): BE 39.7%/94.5%/41.1%/2.29x, \
         BP 17.1%/98.1%/22.4%/4.37x, BU 8.5%/98.1%/12.3%/7.97x"
    );
    save_json("table1", &r);
}
