//! Regenerates paper Fig. 6: the L×W design-space exploration
//! (execution time ×GPP, energy ×GPP, average occupation).
//!
//! Pass `--jobs <n>` to shard the 12 design points across n workers
//! (default: all cores; `--jobs 1` is sequential, same bytes either way).

use bench::{apply_cli_flags, fig6, save_json, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = fig6(&ctx);
    println!("== Fig. 6: design-space exploration (relative to stand-alone GPP) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "design", "time [x]", "energy [x]", "speedup", "occupation", "verified"
    );
    for p in &r.points {
        let tag = match (p.l, p.w) {
            (16, 2) => " <- BE",
            (32, 4) => " <- BP",
            (32, 8) => " <- BU",
            _ => "",
        };
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>10.2} {:>11.1}% {:>9}{}",
            format!("(L{},W{})", p.l, p.w),
            p.rel_time,
            p.rel_energy,
            p.speedup,
            100.0 * p.occupation,
            p.verified,
            tag
        );
    }
    save_json("fig6", &r);
}
