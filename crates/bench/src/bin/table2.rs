//! Regenerates paper Table II: CGRA area overhead of the movement
//! extensions (BE scenario) plus the unchanged column latency.

use bench::{save_json, table2, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::default();
    let r = table2(&ctx);
    println!("== Table II: CGRA area overhead (BE scenario) ==");
    println!("{:<12} {:>14} {:>14}", "", "Baseline", "Modified");
    println!(
        "{:<12} {:>14.0} {:>14.0}  (+{:.2}%)  [paper: 28,995 -> 30,199, +4.15%]",
        "Area[um2]",
        r.baseline_area_um2,
        r.modified_area_um2,
        100.0 * r.area_overhead
    );
    println!(
        "{:<12} {:>14} {:>14}  (+{:.2}%)  [paper: 79,540 -> 83,083, +4.45%]",
        "# Cells",
        r.baseline_cells,
        r.modified_cells,
        100.0 * r.cell_overhead
    );
    println!(
        "column latency: {:.0} ps -> {:.0} ps  [paper: 120 ps, unchanged]",
        r.baseline_delay_ps, r.modified_delay_ps
    );
    println!();
    println!("overheads on the other fabrics (cells / area):");
    for (name, c, a) in &r.other_fabrics {
        println!("  {:<10} +{:.2}% / +{:.2}%", name, 100.0 * c, 100.0 * a);
    }
    println!();
    println!(
        "configuration cache (FinCACTI-substitute sizing): {:.1} KiB, {:.0} um2",
        r.cfg_cache_kib, r.cfg_cache_area_um2
    );
    save_json("table2", &r);
}
