//! CI perf-regression gate (DESIGN.md §16).
//!
//! Compares fresh `CRITERION_SNAPSHOT` files against the committed
//! baseline under `crates/bench/benches/baseline/` and exits non-zero
//! when any tracked benchmark's fastest sample regressed past the
//! tolerance (default 15%), or when a baselined benchmark went missing.
//! The fastest sample — not the median — is compared: runner noise only
//! adds time, so the minimum is the stable estimator (see `bench::gate`).
//!
//! ```text
//! bench_gate --fresh BENCH_solve.json [--fresh ...]   # compare
//! bench_gate --fresh ... --rebaseline                 # escape hatch
//! ```
//!
//! Flags: `--fresh <file>` (repeatable; a fresh snapshot file),
//! `--baseline-dir <dir>` (default: the committed baseline),
//! `--tolerance <frac>` (default 0.15), and `--rebaseline` to overwrite
//! the committed baseline with the fresh files after an intentional perf
//! change — commit the resulting diff.

use std::path::PathBuf;

use bench::gate::{
    baseline_files, compare, default_baseline_dir, load_snapshots, rebaseline, DEFAULT_TOLERANCE,
};

struct Cli {
    fresh: Vec<PathBuf>,
    baseline_dir: PathBuf,
    tolerance: f64,
    rebaseline: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        fresh: Vec::new(),
        baseline_dir: default_baseline_dir(),
        tolerance: DEFAULT_TOLERANCE,
        rebaseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => {
                let v = args.next().ok_or("--fresh needs a file path")?;
                cli.fresh.push(PathBuf::from(v));
            }
            "--baseline-dir" => {
                let v = args.next().ok_or("--baseline-dir needs a directory")?;
                cli.baseline_dir = PathBuf::from(v);
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a fraction, e.g. 0.15")?;
                cli.tolerance = v.parse().map_err(|e| format!("--tolerance {v}: {e}"))?;
            }
            "--rebaseline" => cli.rebaseline = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cli.fresh.is_empty() {
        return Err("pass at least one --fresh <snapshot.json>".into());
    }
    Ok(cli)
}

fn main() {
    let cli = parse_cli().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if cli.rebaseline {
        if let Err(e) = rebaseline(&cli.baseline_dir, &cli.fresh) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!(
            "rebaselined {} snapshot file(s) into {}",
            cli.fresh.len(),
            cli.baseline_dir.display()
        );
        return;
    }
    let base_paths = baseline_files(&cli.baseline_dir).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let baseline = load_snapshots(&base_paths).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let fresh = load_snapshots(&cli.fresh).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let outcome = compare(&baseline, &fresh, cli.tolerance);
    print!("{}", outcome.render_table());
    if outcome.passed() {
        println!(
            "perf gate: ok ({} benchmarks, tolerance {:.0}%)",
            outcome.rows.len(),
            cli.tolerance * 100.0
        );
    } else {
        let n = outcome.failures().count();
        println!(
            "perf gate: FAILED ({n} of {} benchmarks; intentional change? re-run the benches \
             with CRITERION_SNAPSHOT and pass --rebaseline, then commit the diff)",
            outcome.rows.len()
        );
        std::process::exit(1);
    }
}
