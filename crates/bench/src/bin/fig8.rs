//! Regenerates paper Fig. 8: utilization PDFs (top) and NBTI-induced delay
//! increase over the years (bottom) for BE/BP/BU × every policy series.
//! The delay curves come from true in-run epoch snapshots (`util-trace`
//! probes riding the sweep, DESIGN.md §10); the utilization-convergence
//! report derived from the same series lands in `results/convergence.json`.
//!
//! Pass `--policy <spec>` (repeatable) to evaluate a custom policy set,
//! e.g. `fig8 -- --policy rotation:raster --policy health-aware`, and
//! `--jobs <n>` to shard the scenario x policy grid (default: all cores).

use bench::{apply_cli_flags, convergence, fig8, save_json, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = fig8(&ctx);
    println!("== Fig. 8 (top): utilization PDFs ==");
    for s in &r.series {
        let peak = s.pdf.iter().cloned().fold((0.0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
        println!(
            "{:<3} {:<26} worst-util {:>5.1}%  pdf peak at u={:.2} (density {:.1})",
            s.scenario,
            s.policy,
            100.0 * s.worst_utilization,
            peak.0,
            peak.1
        );
    }
    println!();
    println!("== Fig. 8 (bottom): delay increase over time (worst FU) ==");
    println!(
        "{:<3} {:<26} {:>7} {:>7} {:>7} {:>7} {:>7}  years->10%",
        "sc", "policy", "2y", "4y", "6y", "8y", "10y"
    );
    for s in &r.series {
        let at = |y: f64| {
            s.delay_curve
                .iter()
                .find(|(t, _)| (*t - y).abs() < 0.06)
                .map(|(_, d)| format!("{:>6.2}%", 100.0 * d))
                .unwrap_or_default()
        };
        let eol = s
            .delay_curve
            .iter()
            .find(|(_, d)| *d >= r.eol_delay_frac)
            .map(|(t, _)| format!("{t:.1}y"))
            .unwrap_or_else(|| "> horizon".into());
        println!(
            "{:<3} {:<26} {} {} {} {} {}  {}",
            s.scenario,
            s.policy,
            at(2.0),
            at(4.0),
            at(6.0),
            at(8.0),
            at(10.0),
            eol
        );
    }
    let conv = convergence(&r);
    println!();
    println!(
        "== utilization convergence (worst FU settles within {:.0}%) ==",
        100.0 * conv.tolerance
    );
    for row in &conv.rows {
        println!(
            "{:<3} {:<26} settles at {:>5.1}% of run ({:>9} of {:>9} cycles)",
            row.scenario,
            row.policy,
            100.0 * row.settle_fraction,
            row.settle_cycle,
            row.total_cycles,
        );
    }
    save_json("fig8", &r);
    save_json("convergence", &conv);
}
