//! Fleet-scale closed-loop lifetime simulation (DESIGN.md §11, §12): N
//! devices per policy run their lane's seed-derived mibench mix for years
//! on the BE scenario while NBTI wear accumulates, end-of-life FUs drop
//! out of the fault mask, allocation routes around them, and devices die
//! when no legal placement remains. Emits `results/survival.json` with
//! per-policy survival curves, MTTF and first-failure histograms.
//!
//! Flags: `--devices <n>` sizes the fleet (default 8), `--lanes <n>` sets
//! the distinct workload seeds (default `min(devices, 8)` — fleets beyond
//! 8 devices share trajectories through equivalence classes), `--shard
//! <n>` the streaming shard size, and the usual repeatable `--policy
//! <spec>` / `--jobs <n>` apply. Campaign control: `--checkpoint <path>`
//! persists (and resumes) progress, `--checkpoint-every <n>` sets the wave
//! width, `--stop-after <n>` pauses after n shards. `--metrics` turns the
//! flight recorder on (DESIGN.md §16): a completed campaign also writes
//! `results/metrics.json`. The report — and the metrics registry — is
//! byte-identical for every worker count, shard split and kill/resume
//! point — CI diffs them all.

use bench::{
    apply_cli_flags, default_lanes, fig_lifetime_campaign, parse_checkpoint_every_flag,
    parse_checkpoint_flag, parse_devices_flag, parse_lanes_flag, parse_shard_flag,
    parse_stop_after_flag, save_json, ExperimentContext,
};
use transrec::{CampaignOptions, CampaignStatus, FleetReport};

/// Default device instances per policy.
const DEFAULT_DEVICES: usize = 8;

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_devices_flag(&args).and_then(|devices| {
        Ok((
            devices.unwrap_or(DEFAULT_DEVICES),
            parse_lanes_flag(&args)?,
            parse_shard_flag(&args)?,
            CampaignOptions {
                checkpoint: parse_checkpoint_flag(&args)?,
                checkpoint_every_shards: parse_checkpoint_every_flag(&args)?.unwrap_or(0),
                stop_after_shards: parse_stop_after_flag(&args)?,
                collect_metrics: ctx.collect_metrics,
            },
        ))
    });
    let (devices, lanes, shard, options) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let lanes = lanes.unwrap_or_else(|| default_lanes(devices));
    obs::global::reset();

    match fig_lifetime_campaign(&ctx, devices, lanes, shard, &options) {
        CampaignStatus::Complete(report) => {
            print_report(&report);
            save_json("survival", &*report);
            // Paused campaigns fold nothing into the global registry, so
            // metrics.json — like survival.json — only exists once the
            // campaign completes (the CI resume leg asserts both).
            if ctx.collect_metrics {
                save_json("metrics", &obs::global::snapshot());
            }
        }
        CampaignStatus::Paused { completed_shards, total_shards } => {
            println!(
                "== fleet campaign paused: {completed_shards}/{total_shards} shards complete \
                 (resume with the same --checkpoint) =="
            );
        }
    }
}

fn print_report(r: &FleetReport) {
    println!(
        "== fleet lifetime: {} devices/policy over {} lane(s), {}x{} fabric, {} mix, {}y \
         missions, {}y horizon ==",
        r.devices, r.lanes, r.rows, r.cols, r.suite, r.mission_years, r.horizon_years
    );
    println!(
        "{:<26} {:>8} {:>10} {:>13} {:>13} {:>12} {:>10}",
        "policy", "deaths", "MTTF[y]", "1st death[y]", "1st fail[y]", "alive@10y", "sims"
    );
    let baseline_mttf = r.policy("baseline").map(|p| p.stats.mttf_years);
    for fleet in &r.policies {
        let first_fail = fleet
            .devices
            .iter()
            .filter_map(|d| d.first_failure_years)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:<26} {:>5}/{:<2} {:>10.2} {:>13} {:>13} {:>11.0}% {:>10}",
            fleet.policy,
            fleet.stats.deaths,
            fleet.stats.devices,
            fleet.stats.mttf_years,
            fleet
                .stats
                .earliest_death_years
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "-".into()),
            if first_fail.is_finite() { format!("{first_fail:.2}") } else { "-".into() },
            100.0 * fleet.survival.alive_at(10.0),
            fleet.simulated_missions,
        );
    }
    if let Some(base) = baseline_mttf {
        println!();
        for fleet in r.policies.iter().filter(|p| p.policy != "baseline") {
            println!(
                "{:<26} outlives baseline by {:.2}x (MTTF, horizon-censored)",
                fleet.policy,
                fleet.stats.mttf_years / base
            );
        }
    }
}
