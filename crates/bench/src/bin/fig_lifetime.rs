//! Fleet-scale closed-loop lifetime simulation (DESIGN.md §11): N devices
//! per policy run their seed-derived mibench mixes for years on the BE
//! scenario while NBTI wear accumulates, end-of-life FUs drop out of the
//! fault mask, allocation routes around them, and devices die when no
//! legal placement remains. Emits `results/survival.json` with per-policy
//! survival curves, MTTF and first-failure histograms.
//!
//! Flags: `--devices <n>` sizes the fleet (default 8), the usual
//! repeatable `--policy <spec>` swaps the policy series, and `--jobs <n>`
//! shards the device simulations (results are byte-identical for every
//! worker count — CI diffs `--jobs 1` against `--jobs 4`).

use bench::{apply_cli_flags, fig_lifetime, parse_devices_flag, save_json, ExperimentContext};

/// Default device instances per policy.
const DEFAULT_DEVICES: usize = 8;

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices = match parse_devices_flag(&args) {
        Ok(d) => d.unwrap_or(DEFAULT_DEVICES),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let r = fig_lifetime(&ctx, devices);
    println!(
        "== fleet lifetime: {} devices/policy, {}x{} fabric, {} mix, {}y missions, {}y horizon ==",
        r.devices, r.rows, r.cols, r.suite, r.mission_years, r.horizon_years
    );
    println!(
        "{:<26} {:>8} {:>10} {:>13} {:>13} {:>12}",
        "policy", "deaths", "MTTF[y]", "1st death[y]", "1st fail[y]", "alive@10y"
    );
    let baseline_mttf = r.policy("baseline").map(|p| p.stats.mttf_years);
    for fleet in &r.policies {
        let first_fail = fleet
            .devices
            .iter()
            .filter_map(|d| d.first_failure_years)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:<26} {:>5}/{:<2} {:>10.2} {:>13} {:>13} {:>11.0}%",
            fleet.policy,
            fleet.stats.deaths,
            fleet.stats.devices,
            fleet.stats.mttf_years,
            fleet
                .stats
                .earliest_death_years
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "-".into()),
            if first_fail.is_finite() { format!("{first_fail:.2}") } else { "-".into() },
            100.0 * fleet.survival.alive_at(10.0),
        );
    }
    if let Some(base) = baseline_mttf {
        println!();
        for fleet in r.policies.iter().filter(|p| p.policy != "baseline") {
            println!(
                "{:<26} outlives baseline by {:.2}x (MTTF, horizon-censored)",
                fleet.policy,
                fleet.stats.mttf_years / base
            );
        }
    }
    save_json("survival", &r);
}
