//! Regenerates paper Fig. 7: BE (16×2) per-FU utilization heatmaps under
//! the baseline and the proposed utilization-aware allocation.
//!
//! Pass `--policy <spec>` to swap the proposed policy, e.g.
//! `fig7 -- --policy rotation:column-major@per-load`, and `--jobs <n>` to
//! size the sweep pool (default: all cores).

use bench::{apply_cli_flags, fig7, save_json, ExperimentContext};

fn main() {
    let mut ctx = ExperimentContext::default();
    if let Err(e) = apply_cli_flags(&mut ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let r = fig7(&ctx);
    println!("== Fig. 7: BE (16x2) utilization, baseline vs proposed ==");
    println!("-- baseline --");
    println!("{}", r.baseline_heatmap);
    println!("-- proposed ({}) --", r.proposed_policy);
    println!("{}", r.proposed_heatmap);
    println!(
        "max utilization: baseline {:.1}% (paper 94.5%) -> proposed {:.1}% (paper 41.2%)",
        100.0 * r.baseline_max,
        100.0 * r.proposed_max
    );
    save_json("fig7", &r);
}
