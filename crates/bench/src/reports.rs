//! Serializable report types, one per paper artefact.

use serde::{Deserialize, Serialize};

/// Fig. 1 — motivational utilization heatmap (4×8, traditional mapping).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig1Report {
    /// Canonical fabric spec string (`FabricSpec` grammar, DESIGN.md §14).
    pub fabric: String,
    /// Fabric rows.
    pub rows: u32,
    /// Fabric cols.
    pub cols: u32,
    /// Row-major per-FU utilization.
    pub utilization: Vec<f64>,
    /// Highest / lowest per-FU utilization.
    pub max: f64,
    /// Lowest per-FU utilization.
    pub min: f64,
    /// Rendered heatmap (paper-style percent grid).
    pub heatmap: String,
}

/// One Fig. 6 design point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6Point {
    /// Canonical fabric spec string (`FabricSpec` grammar, DESIGN.md §14).
    pub fabric: String,
    /// Columns (L).
    pub l: u32,
    /// Rows (W).
    pub w: u32,
    /// Execution time relative to the stand-alone GPP (1/speedup).
    pub rel_time: f64,
    /// Energy relative to the stand-alone GPP.
    pub rel_energy: f64,
    /// Mean per-FU utilization ("occupation").
    pub occupation: f64,
    /// Speedup over the GPP.
    pub speedup: f64,
    /// All benchmarks verified against their oracles.
    pub verified: bool,
}

/// Fig. 6 — the design-space exploration scatter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6Report {
    /// All twelve design points.
    pub points: Vec<Fig6Point>,
}

/// Fig. 7 — BE utilization heatmaps, baseline vs proposed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Report {
    /// Canonical fabric spec string (`FabricSpec` grammar, DESIGN.md §14).
    pub fabric: String,
    /// Fabric rows.
    pub rows: u32,
    /// Fabric cols.
    pub cols: u32,
    /// The proposed policy's spec string (`rotation:snake@per-exec` unless
    /// overridden via `--policy`).
    pub proposed_policy: String,
    /// Baseline per-FU utilization (row-major).
    pub baseline: Vec<f64>,
    /// Proposed (rotation) per-FU utilization (row-major).
    pub proposed: Vec<f64>,
    /// Baseline worst-FU utilization.
    pub baseline_max: f64,
    /// Proposed worst-FU utilization.
    pub proposed_max: f64,
    /// Rendered baseline heatmap.
    pub baseline_heatmap: String,
    /// Rendered proposed heatmap.
    pub proposed_heatmap: String,
}

/// One scenario × policy series of Fig. 8.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8Series {
    /// Scenario tag (BE/BP/BU).
    pub scenario: String,
    /// Policy spec string (`baseline`, `rotation:snake@per-load`, …).
    pub policy: String,
    /// Utilization-PDF points `(bin_center, density)`.
    pub pdf: Vec<(f64, f64)>,
    /// Worst-FU delay-degradation curve `(years, delay_fraction)` built
    /// from the **in-run epoch series**: deployment time `t` maps to the
    /// cumulative worst-FU utilization observed after the matching
    /// fraction of the run (DESIGN.md §10).
    pub delay_curve: Vec<(f64, f64)>,
    /// The analytic curve extrapolated from the final utilization alone —
    /// kept as a cross-check series; both curves agree at the horizon.
    pub analytic_delay_curve: Vec<(f64, f64)>,
    /// The suite-level epoch series `(system_cycle, cumulative worst-FU
    /// utilization)` the in-run curve was built from.
    pub epoch_worst: Vec<(u64, f64)>,
    /// Worst-FU utilization (end of run).
    pub worst_utilization: f64,
}

/// Fig. 8 — utilization PDFs (top) and NBTI delay curves (bottom).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8Report {
    /// One series per scenario × policy (baseline plus every context
    /// policy: three scenarios × five series by default).
    pub series: Vec<Fig8Series>,
    /// End-of-life delay fraction (the 10% line).
    pub eol_delay_frac: f64,
    /// Epoch-sampling interval (system cycles) of the in-run series.
    pub epoch_cycles: u64,
}

/// One layout-explorer row: one fabric layout under one policy
/// (DESIGN.md §14).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayoutRow {
    /// Canonical fabric spec string (`FabricSpec` grammar).
    pub fabric: String,
    /// Policy spec string (`baseline`, `rotation:snake@per-exec`, …).
    pub policy: String,
    /// Suite speedup over the stand-alone GPP.
    pub speedup: f64,
    /// Worst-FU effective duty (bandwidth-stressed utilization — what
    /// NBTI sees).
    pub worst_utilization: f64,
    /// Mean per-FU effective duty.
    pub mean_utilization: f64,
    /// Projected worst-FU delay increase at the context horizon.
    pub worst_wear: f64,
    /// Projected lifetime in years (worst FU crossing end-of-life).
    pub lifetime_years: f64,
    /// Configurations that fell back to the GPP because no capable
    /// placement existed on this layout.
    pub offloads_starved: u64,
    /// All benchmarks verified against their oracles.
    pub verified: bool,
}

/// The layout explorer (`results/layout.json`) — [`cgra::FabricSpec`]
/// layout mixes × policies: per-layout speedup, worst-FU wear and
/// projected lifetime (DESIGN.md §14).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayoutReport {
    /// The proposed policy's spec string (first `--policy`, or the
    /// paper's snake rotation).
    pub proposed_policy: String,
    /// Layout-major rows: for each layout, baseline first, then every
    /// context policy.
    pub rows: Vec<LayoutRow>,
}

/// One optimality-gap row: one (fabric layout × fault density) cell under
/// one policy, measured against the exact-mapping oracle (DESIGN.md §15).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GapRow {
    /// Canonical fabric spec string (`FabricSpec` grammar).
    pub fabric: String,
    /// Injected permanent-fault density (dead FUs / total FUs).
    pub fault_density: f64,
    /// Dead FUs actually injected at this density.
    pub dead_fus: u32,
    /// Policy spec string (`baseline`, …, `exact`).
    pub policy: String,
    /// Suite speedup over the stand-alone GPP.
    pub speedup: f64,
    /// Worst-FU effective duty (bandwidth-stressed utilization — what
    /// NBTI sees).
    pub worst_utilization: f64,
    /// Mean per-FU effective duty.
    pub mean_utilization: f64,
    /// Projected lifetime in years (worst FU crossing end-of-life;
    /// `null` when the policy never offloaded and nothing wears).
    pub lifetime_years: f64,
    /// Worst-FU duty relative to the oracle's on the same cell (`1.0` is
    /// optimal; `null` when the oracle itself never offloaded).
    pub duty_gap: f64,
    /// Oracle lifetime over this policy's (`1.0` is optimal).
    pub lifetime_gap: f64,
    /// Configuration executions the policy actually placed on the fabric.
    pub offloads: u64,
    /// Configurations that fell back to the GPP (capability starvation or
    /// the fault-fallback path).
    pub offloads_starved: u64,
    /// All benchmarks verified against their oracles.
    pub verified: bool,
}

/// The optimality-gap experiment (`results/gap.json`) — every heuristic
/// policy measured against the exact branch-and-bound oracle over fabric
/// layouts × injected fault densities (DESIGN.md §15).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GapReport {
    /// The oracle's spec string (the yardstick policy).
    pub exact_policy: String,
    /// Cell-major rows: for each layout × density, baseline first, then
    /// every context policy, then the oracle.
    pub rows: Vec<GapRow>,
}

/// One utilization-convergence row: how fast a policy's cumulative
/// worst-FU utilization settles to its final value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvergenceRow {
    /// Scenario tag (BE/BP/BU).
    pub scenario: String,
    /// Policy spec string.
    pub policy: String,
    /// Total suite cycles behind the series.
    pub total_cycles: u64,
    /// Final cumulative worst-FU utilization.
    pub final_worst: f64,
    /// First sampled cycle from which the worst-FU utilization stays
    /// within the report's tolerance of the final value.
    pub settle_cycle: u64,
    /// `settle_cycle / total_cycles` — how early the stress distribution
    /// flattened (lower is faster).
    pub settle_fraction: f64,
}

/// Utilization-convergence report: per scenario × policy, the speed at
/// which cumulative worst-FU stress flattens during the run — the
/// temporal complement of Table I's end-state numbers (DESIGN.md §10).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Relative tolerance around the final worst utilization that counts
    /// as "settled".
    pub tolerance: f64,
    /// Scenario × policy rows, in Fig. 8 series order.
    pub rows: Vec<ConvergenceRow>,
}

/// One Table I row: one policy on one scenario, against that scenario's
/// baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Scenario tag.
    pub scenario: String,
    /// Policy spec string (`rotation:snake@per-exec`, `health-aware`, …).
    pub policy: String,
    /// Mean per-FU utilization (baseline run; policy-invariant workload
    /// property).
    pub avg_util: f64,
    /// Baseline worst-FU utilization.
    pub baseline_worst: f64,
    /// This policy's worst-FU utilization.
    pub policy_worst: f64,
    /// Lifetime improvement factor over the baseline.
    pub lifetime_improvement: f64,
    /// Baseline lifetime in years.
    pub baseline_lifetime_years: f64,
    /// This policy's lifetime in years.
    pub policy_lifetime_years: f64,
}

/// Table I — utilization and lifetime improvements per scenario × policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Report {
    /// Scenario × policy rows, scenarios in paper order (BE/BP/BU).
    pub rows: Vec<Table1Row>,
}

/// Table II — area of the BE fabric with and without the extensions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Report {
    /// Baseline area in µm².
    pub baseline_area_um2: f64,
    /// Modified (with movement extensions) area in µm².
    pub modified_area_um2: f64,
    /// Baseline standard-cell count.
    pub baseline_cells: u64,
    /// Modified standard-cell count.
    pub modified_cells: u64,
    /// Area overhead fraction.
    pub area_overhead: f64,
    /// Cell overhead fraction.
    pub cell_overhead: f64,
    /// Column latency (ps), baseline.
    pub baseline_delay_ps: f64,
    /// Column latency (ps), modified.
    pub modified_delay_ps: f64,
    /// Overheads for the other evaluated fabrics `(name, cells, area)`.
    pub other_fabrics: Vec<(String, f64, f64)>,
    /// Configuration-cache SRAM sizing (FinCACTI substitute): capacity in
    /// KiB and macro area in µm².
    pub cfg_cache_kib: f64,
    /// Configuration-cache macro area in µm².
    pub cfg_cache_area_um2: f64,
}
