//! # bench — the experiment harness
//!
//! One runner per paper artefact (Fig. 1, Fig. 6, Fig. 7, Fig. 8, Table I,
//! Table II), each regenerating the same rows/series the paper reports.
//! The binaries in `src/bin/` print the tables and drop machine-readable
//! JSON into `results/`; `cargo run -p bench --bin all --release`
//! regenerates everything (see EXPERIMENTS.md for paper-vs-measured).

#![warn(missing_docs)]

pub mod experiments;
pub mod reports;

pub use experiments::{
    convergence, default_lanes, default_layouts, default_serve_lanes, fig1, fig6, fig7, fig8,
    fig_lifetime, fig_lifetime_campaign, fleet_serve, fleet_serve_campaign, layout, table1, table2,
    ExperimentContext, CONVERGENCE_TOLERANCE,
};

use std::path::PathBuf;

use cgra::FabricSpec;
use transrec::TrafficSpec;
use uaware::PolicySpec;

/// Applies the shared experiment CLI flags from the process arguments to
/// `ctx`:
///
/// * repeatable `--policy <spec>` / `--policy=<spec>` flags replace
///   [`ExperimentContext::policies`] wholesale when at least one is given
///   (the first spec becomes the figure's "proposed" series), parsed with
///   [`PolicySpec`]'s [`FromStr`](std::str::FromStr) grammar, e.g.
///   `--policy rotation:snake@per-load --policy random:7`;
/// * repeatable `--fabric <spec>` / `--fabric=<spec>` flags replace
///   [`ExperimentContext::fabrics`] wholesale when at least one is given,
///   parsed with [`FabricSpec`]'s [`FromStr`](std::str::FromStr) grammar
///   (DESIGN.md §14), e.g. `--fabric 4x8:het-checker --fabric be+bw-2` —
///   the figures then run on those layouts instead of their hard-coded
///   defaults, keyed by the canonical spec string;
/// * `--jobs <n>` / `--jobs=<n>` sets [`ExperimentContext::jobs`], the
///   sweep worker count (`0` = all cores, `1` = sequential; results are
///   byte-identical for every value).
///
/// Unknown arguments are ignored so the flags compose with whatever else a
/// binary accepts.
///
/// # Errors
///
/// Returns a description of the first malformed flag (the binaries report
/// it and exit non-zero).
pub fn apply_cli_flags(ctx: &mut ExperimentContext) -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = parse_policy_flags(&args).map_err(|e| e.to_string())?;
    if !specs.is_empty() {
        ctx.policies = specs;
    }
    let fabrics = parse_fabric_flags(&args)?;
    if !fabrics.is_empty() {
        ctx.fabrics = fabrics;
    }
    if let Some(jobs) = parse_jobs_flag(&args)? {
        ctx.jobs = jobs;
    }
    Ok(())
}

/// Extracts every `--fabric <spec>` / `--fabric=<spec>` occurrence from
/// `args`, in order, parsed with [`FabricSpec`]'s
/// [`FromStr`](std::str::FromStr) grammar (e.g. `--fabric 4x8:het-checker
/// --fabric be+bw-2`) and checked to build a valid fabric. Other arguments
/// are ignored; an empty vec means the flag was absent.
///
/// # Errors
///
/// Returns the parse (or build) error of the first malformed spec, or an
/// error for a trailing `--fabric` with no value.
pub fn parse_fabric_flags(args: &[String]) -> Result<Vec<FabricSpec>, String> {
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--fabric" {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => {
                    return Err(
                        "--fabric requires a value (e.g. --fabric 4x8:het-checker)".to_string()
                    )
                }
            }
        } else if let Some(v) = args[i].strip_prefix("--fabric=") {
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        let spec = value.parse::<FabricSpec>().map_err(|e| e.to_string())?;
        spec.build().map_err(|e| format!("--fabric {value}: {e}"))?;
        specs.push(spec);
        i += 1;
    }
    Ok(specs)
}

/// Extracts the last `--jobs <n>` / `--jobs=<n>` occurrence from `args`
/// (`None` when the flag is absent). Other arguments are ignored.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--jobs`
/// with no value.
pub fn parse_jobs_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--jobs", "0 = all cores")
}

/// Extracts the last `--devices <n>` / `--devices=<n>` occurrence from
/// `args` (`None` when the flag is absent) — the fleet-size knob of the
/// `fig_lifetime` binary.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--devices`
/// with no value.
pub fn parse_devices_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--devices", "device instances per policy")
}

/// Extracts the last `--lanes <n>` / `--lanes=<n>` occurrence from `args`
/// (`None` when the flag is absent) — how many distinct workload seeds the
/// `fig_lifetime` fleet is drawn from (DESIGN.md §12).
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--lanes`
/// with no value.
pub fn parse_lanes_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--lanes", "distinct workload-seed lanes")
}

/// Extracts the last `--shard <n>` / `--shard=<n>` occurrence from `args`
/// (`None` when the flag is absent) — the fleet campaign's streaming shard
/// size. Never changes results, only memory and checkpoint granularity.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--shard`
/// with no value.
pub fn parse_shard_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--shard", "devices per streaming shard")
}

/// Extracts the last `--stop-after <n>` / `--stop-after=<n>` occurrence
/// from `args` (`None` when the flag is absent) — pause the fleet campaign
/// after that many shards (the CI resume leg's kill stand-in).
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing
/// `--stop-after` with no value.
pub fn parse_stop_after_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--stop-after", "shards to complete before pausing")
}

/// Extracts the last `--horizon-days <n>` / `--horizon-days=<n>`
/// occurrence from `args` (`None` when the flag is absent) — the serving
/// horizon of the `fleet_serve` binary (DESIGN.md §13).
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing
/// `--horizon-days` with no value.
pub fn parse_horizon_days_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--horizon-days", "serving days")
}

/// Extracts every `--traffic <spec>` / `--traffic=<spec>` occurrence from
/// `args`, in order, parsed with [`TrafficSpec`]'s
/// [`FromStr`](std::str::FromStr) grammar (e.g. `--traffic
/// diurnal@rph-6000+swing-80 --traffic heavy`). Other arguments are
/// ignored; an empty vec means the flag was absent.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec, or an error for a
/// trailing `--traffic` with no value.
pub fn parse_traffic_flags(args: &[String]) -> Result<Vec<TrafficSpec>, String> {
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--traffic" {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => {
                    return Err(
                        "--traffic requires a value (e.g. --traffic diurnal@rph-6000+swing-80)"
                            .to_string(),
                    )
                }
            }
        } else if let Some(v) = args[i].strip_prefix("--traffic=") {
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        specs.push(value.parse::<TrafficSpec>()?);
        i += 1;
    }
    Ok(specs)
}

/// Extracts the last `--checkpoint-every <n>` / `--checkpoint-every=<n>`
/// occurrence from `args` (`None` when the flag is absent) — shards per
/// checkpointed wave.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing
/// `--checkpoint-every` with no value.
pub fn parse_checkpoint_every_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--checkpoint-every", "shards per checkpointed wave")
}

/// Extracts the last `--checkpoint <path>` / `--checkpoint=<path>`
/// occurrence from `args` (`None` when the flag is absent) — where the
/// fleet campaign persists (and resumes) its progress.
///
/// # Errors
///
/// Returns a description for a trailing `--checkpoint` with no value.
pub fn parse_checkpoint_flag(args: &[String]) -> Result<Option<PathBuf>, String> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--checkpoint" {
            i += 1;
            match args.get(i) {
                Some(v) => path = Some(PathBuf::from(v)),
                None => return Err("--checkpoint requires a path".to_string()),
            }
        } else if let Some(v) = args[i].strip_prefix("--checkpoint=") {
            path = Some(PathBuf::from(v));
        }
        i += 1;
    }
    Ok(path)
}

/// The shared `--<flag> <n>` / `--<flag>=<n>` parser behind
/// [`parse_jobs_flag`] and [`parse_devices_flag`]: the last occurrence
/// wins, other arguments are ignored.
fn parse_count_flag(args: &[String], flag: &str, hint: &str) -> Result<Option<usize>, String> {
    let prefix = format!("{flag}=");
    let mut count = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == flag {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => return Err(format!("{flag} requires a value ({hint})")),
            }
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        count = Some(
            value
                .parse::<usize>()
                .map_err(|_| format!("{flag} expects a non-negative integer, got `{value}`"))?,
        );
        i += 1;
    }
    Ok(count)
}

/// Extracts every `--policy <spec>` / `--policy=<spec>` occurrence from
/// `args`, in order. Other arguments are ignored. This is the single parser
/// behind [`apply_cli_flags`] and the `diag` binary.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec, or an error for a
/// trailing `--policy` with no value.
pub fn parse_policy_flags(args: &[String]) -> Result<Vec<PolicySpec>, uaware::ParseSpecError> {
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--policy" {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => {
                    return Err(uaware::ParseSpecError::new(
                        "--policy requires a value (e.g. --policy rotation:snake@per-load)"
                            .to_string(),
                    ))
                }
            }
        } else if let Some(v) = args[i].strip_prefix("--policy=") {
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        specs.push(value.parse::<PolicySpec>()?);
        i += 1;
    }
    Ok(specs)
}

/// Directory where experiment JSON lands (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Serializes a report into `results/<name>.json`.
///
/// # Panics
///
/// Panics on I/O or serialization failure (the harness treats that as a
/// fatal experiment error).
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    eprintln!("[saved {}]", path.display());
}
