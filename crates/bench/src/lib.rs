//! # bench — the experiment harness
//!
//! One runner per paper artefact (Fig. 1, Fig. 6, Fig. 7, Fig. 8, Table I,
//! Table II), each regenerating the same rows/series the paper reports.
//! The binaries in `src/bin/` print the tables and drop machine-readable
//! JSON into `results/`; `cargo run -p bench --bin all --release`
//! regenerates everything (see EXPERIMENTS.md for paper-vs-measured).

#![warn(missing_docs)]

pub mod experiments;
pub mod flags;
pub mod gate;
pub mod reports;

pub use experiments::{
    convergence, default_gap_densities, default_gap_layouts, default_lanes, default_layouts,
    default_serve_lanes, fig1, fig6, fig7, fig8, fig_lifetime, fig_lifetime_campaign, fleet_serve,
    fleet_serve_campaign, gap, layout, table1, table2, ExperimentContext, CONVERGENCE_TOLERANCE,
};
pub use flags::{
    apply_cli_flags, parse_checkpoint_every_flag, parse_checkpoint_flag, parse_devices_flag,
    parse_fabric_flags, parse_horizon_days_flag, parse_jobs_flag, parse_lanes_flag,
    parse_metrics_flag, parse_policy_flags, parse_shard_flag, parse_stop_after_flag,
    parse_traffic_flags,
};
pub use gate::{GateOutcome, GateRow, GateStatus, DEFAULT_TOLERANCE};

use std::path::PathBuf;

/// Directory where experiment JSON lands (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Serializes a report into `results/<name>.json`.
///
/// # Panics
///
/// Panics on I/O or serialization failure (the harness treats that as a
/// fatal experiment error).
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    eprintln!("[saved {}]", path.display());
}
