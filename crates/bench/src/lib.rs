//! # bench — the experiment harness
//!
//! One runner per paper artefact (Fig. 1, Fig. 6, Fig. 7, Fig. 8, Table I,
//! Table II), each regenerating the same rows/series the paper reports.
//! The binaries in `src/bin/` print the tables and drop machine-readable
//! JSON into `results/`; `cargo run -p bench --bin all --release`
//! regenerates everything (see EXPERIMENTS.md for paper-vs-measured).

#![warn(missing_docs)]

pub mod experiments;
pub mod reports;

pub use experiments::{fig1, fig6, fig7, fig8, table1, table2, ExperimentContext};

use std::path::PathBuf;

use uaware::PolicySpec;

/// Applies repeatable `--policy <spec>` / `--policy=<spec>` CLI flags from
/// the process arguments to `ctx`: when at least one is given, the flags
/// replace [`ExperimentContext::policies`] wholesale (the first spec becomes
/// the figure's "proposed" series). Specs are parsed with
/// [`PolicySpec`]'s [`FromStr`](std::str::FromStr) grammar, e.g.
/// `--policy rotation:snake@per-load --policy random:7`.
///
/// Unknown arguments are ignored so the flag composes with whatever else a
/// binary accepts.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec (the binaries report
/// it and exit non-zero).
pub fn apply_policy_flags(ctx: &mut ExperimentContext) -> Result<(), uaware::ParseSpecError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = parse_policy_flags(&args)?;
    if !specs.is_empty() {
        ctx.policies = specs;
    }
    Ok(())
}

/// Extracts every `--policy <spec>` / `--policy=<spec>` occurrence from
/// `args`, in order. Other arguments are ignored. This is the single parser
/// behind [`apply_policy_flags`] and the `diag` binary.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec, or an error for a
/// trailing `--policy` with no value.
pub fn parse_policy_flags(args: &[String]) -> Result<Vec<PolicySpec>, uaware::ParseSpecError> {
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--policy" {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => {
                    return Err(uaware::ParseSpecError::new(
                        "--policy requires a value (e.g. --policy rotation:snake@per-load)"
                            .to_string(),
                    ))
                }
            }
        } else if let Some(v) = args[i].strip_prefix("--policy=") {
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        specs.push(value.parse::<PolicySpec>()?);
        i += 1;
    }
    Ok(specs)
}

/// Directory where experiment JSON lands (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Serializes a report into `results/<name>.json`.
///
/// # Panics
///
/// Panics on I/O or serialization failure (the harness treats that as a
/// fatal experiment error).
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    eprintln!("[saved {}]", path.display());
}
