//! The experiment implementations.
//!
//! Every runner is driven by [`PolicySpec`] values: the baseline is always
//! the reference, and [`ExperimentContext::policies`] is the list of
//! non-baseline series the ablation figures iterate. Adding a scenario to a
//! figure means adding a spec to that list (or passing `--policy` to the
//! binary) — never a new closure or flag.

use cgra::{AreaModel, Fabric, FabricSpec, FaultMask};
use mibench::Workload;
use nbti::CalibratedAging;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use transrec::fleet::{
    run_fleet_campaign, CampaignOptions, CampaignStatus, FleetPlan, FleetReport,
};
use transrec::telemetry::{settle_cycle, ProbeSpec, UtilTrace, DEFAULT_EPOCH_CYCLES};
use transrec::traffic::{run_serving_campaign, ServePlan, ServeReport, ServeStatus, TrafficSpec};
use transrec::{run_sweep, run_sweep_observed, EnergyParams, SuiteRun, SweepPlan, SystemConfig};
use uaware::{derive_cell_seed, MovementGranularity, PatternSpec, PolicySpec};

use crate::reports::*;

/// Shared experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Workload-input seed.
    pub seed: u64,
    /// Energy model coefficients.
    pub energy: EnergyParams,
    /// Aging model (end-of-life calibration).
    pub aging: CalibratedAging,
    /// Fig. 8 time horizon in years.
    pub horizon_years: f64,
    /// The non-baseline policy series evaluated by [`fig7`], [`fig8`] and
    /// [`table1`]; the first entry is the headline "proposed" policy.
    pub policies: Vec<PolicySpec>,
    /// Fabric-layout overrides (the repeatable `--fabric` CLI flag,
    /// DESIGN.md §14). Empty means every figure keeps its hard-coded
    /// default fabrics; non-empty replaces them — [`fig1`] and [`fig7`]
    /// use the first spec, [`fig6`], [`fig8`], [`table1`] and [`layout`]
    /// iterate them all, keyed by the canonical spec string.
    pub fabrics: Vec<FabricSpec>,
    /// Sweep worker count (`0` = all cores, `1` = sequential; the
    /// `--jobs` CLI flag). Results are byte-identical for every value.
    pub jobs: usize,
    /// Epoch length (system cycles) of the utilization-trace probe behind
    /// [`fig8`]'s in-run series (DESIGN.md §10).
    pub epoch_cycles: u64,
    /// Fold the flight recorder's counter registry into the process-global
    /// sink while sweeps and campaigns run (the `--metrics` CLI flag;
    /// DESIGN.md §16). Off by default — the hottest counter fires once per
    /// retired GPP instruction. Binaries that emit `results/metrics.json`
    /// snapshot [`obs::global`] after their experiments complete.
    pub collect_metrics: bool,
}

impl Default for ExperimentContext {
    fn default() -> ExperimentContext {
        ExperimentContext {
            seed: 0xDAC2020,
            energy: EnergyParams::default(),
            aging: CalibratedAging::default(),
            horizon_years: 10.0,
            policies: vec![
                PolicySpec::rotation(),
                PolicySpec::Rotation {
                    pattern: PatternSpec::Snake,
                    granularity: MovementGranularity::PerLoad,
                },
                PolicySpec::Random { seed: uaware::DEFAULT_RANDOM_SEED },
                PolicySpec::HealthAware,
            ],
            fabrics: Vec::new(),
            jobs: 0,
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
            collect_metrics: false,
        }
    }
}

impl ExperimentContext {
    /// The benchmark suite for this context's seed.
    pub fn suite(&self) -> Vec<Workload> {
        mibench::suite(self.seed)
    }

    /// The headline "proposed" policy (the first entry of
    /// [`Self::policies`]), falling back to the paper's snake rotation.
    pub fn proposed(&self) -> PolicySpec {
        self.policies.first().copied().unwrap_or_else(PolicySpec::rotation)
    }

    /// The scenario lineup the multi-fabric figures ([`fig8`], [`table1`])
    /// iterate: the paper's BE/BP/BU design points by default, or the
    /// `--fabric` overrides labeled by their canonical spec strings
    /// (DESIGN.md §14).
    pub fn scenario_fabrics(&self) -> Vec<(String, Fabric)> {
        if self.fabrics.is_empty() {
            transrec::SCENARIOS.iter().map(|s| (s.name.to_string(), s.fabric())).collect()
        } else {
            self.fabrics.iter().map(|s| (s.to_string(), build_spec(s))).collect()
        }
    }
}

/// Builds a [`FabricSpec`]; contexts only carry specs that were validated
/// at parse time, so a failure here is a programming error.
fn build_spec(spec: &FabricSpec) -> Fabric {
    spec.build().unwrap_or_else(|e| panic!("fabric spec {spec} does not build: {e}"))
}

/// Runs `plan` with the context's worker count, observed (folding the
/// flight recorder's counters into [`obs::global`]) when the context opts
/// in — the observed path returns byte-identical runs (DESIGN.md §16).
fn ctx_sweep(ctx: &ExperimentContext, plan: &SweepPlan) -> Vec<SuiteRun> {
    if ctx.collect_metrics {
        run_sweep_observed(plan, ctx.jobs).expect("sweep runs").0
    } else {
        run_sweep(plan, ctx.jobs).expect("sweep runs")
    }
}

/// Runs the fabrics × policies cross product through the parallel sweep
/// engine with the context's `--jobs` setting, asserting every cell's
/// oracle. Cells come back in [`SweepPlan::cells`] order: fabric-major,
/// then policy (one workload-suite lane). Probes ride the plan as data,
/// so the output stays byte-identical for every worker count.
fn sweep_on(
    ctx: &ExperimentContext,
    fabrics: impl IntoIterator<Item = Fabric>,
    policies: Vec<PolicySpec>,
    probes: &[ProbeSpec],
) -> Vec<SuiteRun> {
    let mut plan = SweepPlan::new(ctx.seed)
        .energy(ctx.energy)
        .policies(policies)
        .probes(probes.iter().copied());
    for fabric in fabrics {
        plan = plan.fabric(fabric);
    }
    let runs = ctx_sweep(ctx, &plan);
    for run in &runs {
        assert!(
            run.all_verified(),
            "an oracle failed on {}x{} under {}",
            run.rows,
            run.cols,
            run.policy
        );
    }
    runs
}

/// Fig. 1 — FU utilization of a 4×8 fabric (or the first `--fabric`
/// override) under traditional (baseline) mapping, aggregated over the
/// ten benchmarks.
pub fn fig1(ctx: &ExperimentContext) -> Fig1Report {
    let fabric = ctx.fabrics.first().map_or_else(Fabric::fig1, build_spec);
    let runs = sweep_on(ctx, [fabric], vec![PolicySpec::Baseline], &[]);
    let grid = runs[0].tracker.utilization();
    Fig1Report {
        fabric: runs[0].fabric_spec.clone(),
        rows: grid.rows(),
        cols: grid.cols(),
        utilization: grid.values().to_vec(),
        max: grid.max(),
        min: grid.min(),
        heatmap: grid.render_heatmap(),
    }
}

/// Fig. 6 — the design-space exploration under the baseline policy: the
/// paper's L×W grid by default, or the `--fabric` override layouts.
pub fn fig6(ctx: &ExperimentContext) -> Fig6Report {
    let fabrics: Vec<Fabric> = if ctx.fabrics.is_empty() {
        transrec::dse_grid().iter().map(|&(l, w)| Fabric::new(w, l)).collect()
    } else {
        ctx.fabrics.iter().map(build_spec).collect()
    };
    let runs = sweep_on(ctx, fabrics, vec![PolicySpec::Baseline], &[]);
    let points = runs
        .iter()
        .map(|run| Fig6Point {
            fabric: run.fabric_spec.clone(),
            l: run.cols,
            w: run.rows,
            rel_time: run.relative_time(),
            rel_energy: run.relative_energy(),
            occupation: run.avg_occupation(),
            speedup: run.speedup(),
            verified: run.all_verified(),
        })
        .collect();
    Fig6Report { points }
}

/// Fig. 7 — BE (16×2, or the first `--fabric` override) utilization
/// heatmaps: baseline vs the proposed policy
/// ([`ExperimentContext::proposed`]).
pub fn fig7(ctx: &ExperimentContext) -> Fig7Report {
    let proposed = ctx.proposed();
    let fabric = ctx.fabrics.first().map_or_else(Fabric::be, build_spec);
    let runs = sweep_on(ctx, [fabric], vec![PolicySpec::Baseline, proposed], &[]);
    let bg = runs[0].tracker.utilization();
    let pg = runs[1].tracker.utilization();
    Fig7Report {
        fabric: runs[0].fabric_spec.clone(),
        rows: bg.rows(),
        cols: bg.cols(),
        proposed_policy: proposed.to_string(),
        baseline: bg.values().to_vec(),
        proposed: pg.values().to_vec(),
        baseline_max: bg.max(),
        proposed_max: pg.max(),
        baseline_heatmap: bg.render_heatmap(),
        proposed_heatmap: pg.render_heatmap(),
    }
}

/// Builds Fig. 8's delay-over-time curve from an in-run epoch series:
/// deployment time `t` (the workload mix repeating for years) corresponds
/// to the cumulative worst-FU utilization observed after the matching
/// fraction `t / horizon` of the run, so early samples reflect the
/// not-yet-flattened stress distribution and the curve converges to the
/// analytic (final-utilization) one as the epochs do (DESIGN.md §10).
fn epoch_delay_curve(
    aging: &CalibratedAging,
    trace: &UtilTrace,
    horizon_years: f64,
    points: usize,
) -> Vec<(f64, f64)> {
    let total = trace.total_cycles();
    (0..points)
        .map(|i| {
            let frac = i as f64 / (points - 1) as f64;
            let t = horizon_years * frac;
            let target = (frac * total as f64).round() as u64;
            let worst = trace.at_cycle(target).map_or(0.0, |s| s.worst());
            (t, aging.delay_increase(t, worst))
        })
        .collect()
}

/// Fig. 8 — per-scenario utilization PDFs and worst-FU NBTI delay curves,
/// one series per scenario × policy (baseline plus every context policy).
/// The delay curves are built from true in-run epoch snapshots
/// (`util-trace` probes riding the sweep); the analytic extrapolation
/// from the final utilization is kept per series as a cross-check.
pub fn fig8(ctx: &ExperimentContext) -> Fig8Report {
    let specs: Vec<PolicySpec> =
        std::iter::once(PolicySpec::Baseline).chain(ctx.policies.iter().copied()).collect();
    let probes = [ProbeSpec::util_trace(ctx.epoch_cycles)];
    let scenarios = ctx.scenario_fabrics();
    let runs = sweep_on(ctx, scenarios.iter().map(|(_, f)| *f), specs.clone(), &probes);
    let mut series = Vec::new();
    let mut runs = runs.iter();
    for (name, _) in &scenarios {
        for spec in &specs {
            let run = runs.next().expect("one run per scenario x policy");
            let grid = run.tracker.utilization();
            let eval = uaware::evaluate_aging(&ctx.aging, &grid, ctx.horizon_years, 101);
            let trace = run.util_trace().expect("fig8 sweep cells carry a util-trace probe");
            series.push(Fig8Series {
                scenario: name.clone(),
                policy: spec.to_string(),
                pdf: grid.histogram(20).series(),
                delay_curve: epoch_delay_curve(&ctx.aging, &trace, ctx.horizon_years, 101),
                analytic_delay_curve: eval.delay_curve.samples.clone(),
                epoch_worst: trace.worst_series(),
                worst_utilization: eval.worst_utilization,
            });
        }
    }
    Fig8Report { series, eol_delay_frac: ctx.aging.eol_delay_frac, epoch_cycles: ctx.epoch_cycles }
}

/// Relative tolerance around the final worst utilization that counts as
/// "settled" in [`convergence`].
pub const CONVERGENCE_TOLERANCE: f64 = 0.05;

/// Derives the utilization-convergence report from [`fig8`]'s epoch
/// series: per scenario × policy, the first sampled cycle from which the
/// cumulative worst-FU utilization stays within
/// [`CONVERGENCE_TOLERANCE`] (relative) of its final value — how fast
/// each policy flattens stress (DESIGN.md §10).
pub fn convergence(report: &Fig8Report) -> ConvergenceReport {
    let rows = report
        .series
        .iter()
        .map(|s| {
            let total_cycles = s.epoch_worst.last().map_or(0, |(c, _)| *c);
            let final_worst = s.epoch_worst.last().map_or(0.0, |(_, w)| *w);
            let settle_cycle = settle_cycle(&s.epoch_worst, CONVERGENCE_TOLERANCE);
            ConvergenceRow {
                scenario: s.scenario.clone(),
                policy: s.policy.clone(),
                total_cycles,
                final_worst,
                settle_cycle,
                settle_fraction: if total_cycles == 0 {
                    0.0
                } else {
                    settle_cycle as f64 / total_cycles as f64
                },
            }
        })
        .collect();
    ConvergenceReport { tolerance: CONVERGENCE_TOLERANCE, rows }
}

/// Table I — utilization and lifetime improvements for BE/BP/BU, one row
/// per scenario × context policy (each against the scenario's baseline).
pub fn table1(ctx: &ExperimentContext) -> Table1Report {
    let specs: Vec<PolicySpec> =
        std::iter::once(PolicySpec::Baseline).chain(ctx.policies.iter().copied()).collect();
    let scenarios = ctx.scenario_fabrics();
    let runs = sweep_on(ctx, scenarios.iter().map(|(_, f)| *f), specs.clone(), &[]);
    let per_scenario = specs.len();
    let mut rows = Vec::new();
    for (ci, (scenario, _)) in scenarios.iter().enumerate() {
        let base = &runs[ci * per_scenario];
        let bg = base.tracker.utilization();
        let base_eval = uaware::evaluate_aging(&ctx.aging, &bg, ctx.horizon_years, 11);
        for (pi, spec) in ctx.policies.iter().enumerate() {
            let run = &runs[ci * per_scenario + 1 + pi];
            let pg = run.tracker.utilization();
            let eval = uaware::evaluate_aging(&ctx.aging, &pg, ctx.horizon_years, 11);
            rows.push(Table1Row {
                scenario: scenario.clone(),
                policy: spec.to_string(),
                avg_util: bg.mean(),
                baseline_worst: bg.max(),
                policy_worst: pg.max(),
                lifetime_improvement: uaware::lifetime_improvement(&base_eval, &eval),
                baseline_lifetime_years: base_eval.lifetime_years,
                policy_lifetime_years: eval.lifetime_years,
            });
        }
    }
    Table1Report { rows }
}

/// The layout mixes [`layout`] explores when `--fabric` is absent: the
/// uniform Fig. 1 geometry plus its heterogeneous class mixes and
/// bandwidth-budgeted variants (DESIGN.md §14).
pub fn default_layouts() -> Vec<FabricSpec> {
    ["4x8", "4x8:het-checker", "4x8:het-rows", "4x8:het-cols", "4x8+bw-2", "4x8:het-checker+bw-2"]
        .iter()
        .map(|s| s.parse().expect("default layout specs parse"))
        .collect()
}

/// The layout explorer behind `results/layout.json` (DESIGN.md §14):
/// every layout mix ([`default_layouts`], or the `--fabric` overrides) ×
/// (baseline + every context policy), reporting per-layout suite speedup,
/// worst-FU effective duty (what NBTI sees once column-bandwidth stress is
/// folded in), projected wear at the horizon, lifetime, and how many
/// configurations starved back to the GPP. Like every sweep it is
/// byte-identical for every `--jobs` value.
pub fn layout(ctx: &ExperimentContext) -> LayoutReport {
    let layouts = if ctx.fabrics.is_empty() { default_layouts() } else { ctx.fabrics.clone() };
    let specs: Vec<PolicySpec> =
        std::iter::once(PolicySpec::Baseline).chain(ctx.policies.iter().copied()).collect();
    let runs = sweep_on(ctx, layouts.iter().map(build_spec), specs, &[]);
    let rows = runs
        .iter()
        .map(|run| {
            let cycles: u64 = run.benchmarks.iter().map(|b| b.system_cycles).sum();
            let duty = run.tracker.duty_cycles(cycles);
            let eval = uaware::evaluate_aging(&ctx.aging, &duty, ctx.horizon_years, 11);
            LayoutRow {
                fabric: run.fabric_spec.clone(),
                policy: run.policy.clone(),
                speedup: run.speedup(),
                worst_utilization: duty.max(),
                mean_utilization: duty.mean(),
                worst_wear: ctx.aging.delay_increase(ctx.horizon_years, duty.max()),
                lifetime_years: eval.lifetime_years,
                offloads_starved: run.benchmarks.iter().map(|b| b.stats.offloads_starved).sum(),
                verified: run.all_verified(),
            }
        })
        .collect();
    LayoutReport { proposed_policy: ctx.proposed().to_string(), rows }
}

/// The layouts [`gap`] sweeps when `--fabric` is absent: two uniform
/// geometries plus a heterogeneous mix and a bandwidth-budgeted variant,
/// small enough that the exact oracle's per-allocation solves stay cheap.
pub fn default_gap_layouts() -> Vec<FabricSpec> {
    ["2x8", "4x8", "4x8:het-checker", "4x8+bw-2"]
        .iter()
        .map(|s| s.parse().expect("default gap layout specs parse"))
        .collect()
}

/// The injected permanent-fault densities [`gap`] sweeps (dead FUs /
/// total FUs; `0.0` is the pristine control).
pub fn default_gap_densities() -> Vec<f64> {
    vec![0.0, 0.125, 0.25]
}

/// A deterministic fault mask killing `round(density × FUs)` distinct
/// cells, drawn by partial Fisher–Yates from a seed derived per sweep
/// cell — byte-identical for every worker count because masks are built
/// on the planning thread (DESIGN.md §15).
fn seeded_fault_mask(fabric: &Fabric, density: f64, seed: u64, cell: u64) -> (FaultMask, u32) {
    let total = fabric.fu_count();
    let dead = ((total as f64) * density).round() as u32;
    assert!(dead < total, "a gap cell must keep at least one live FU");
    let mut rng = SmallRng::seed_from_u64(derive_cell_seed(seed, 0xFA01_7000 ^ cell));
    let mut cells: Vec<u32> = (0..total).collect();
    let mut mask = FaultMask::healthy(fabric);
    for i in 0..dead {
        let j = i + rng.random_range(0..total - i);
        cells.swap(i as usize, j as usize);
        mask.mark_dead(cells[i as usize] / fabric.cols, cells[i as usize] % fabric.cols);
    }
    (mask, dead)
}

/// The optimality-gap experiment behind `results/gap.json` (DESIGN.md
/// §15): every heuristic (baseline + the context policies) and the exact
/// branch-and-bound oracle run the suite on each layout × fault-density
/// cell, with the seeded dead FUs injected through
/// [`transrec::SystemConfig::faults`] and exhaustion degrading to the GPP
/// (`fault_fallback`) instead of killing the run. Each row reports the
/// policy's worst-FU effective duty and projected lifetime next to its
/// gap ratios against the oracle on the same cell. Like every sweep it is
/// byte-identical for every `--jobs` value.
pub fn gap(ctx: &ExperimentContext) -> GapReport {
    let layouts = if ctx.fabrics.is_empty() { default_gap_layouts() } else { ctx.fabrics.clone() };
    let densities = default_gap_densities();
    let exact = PolicySpec::Exact { every: 1 };
    let specs: Vec<PolicySpec> = std::iter::once(PolicySpec::Baseline)
        .chain(ctx.policies.iter().copied())
        .filter(|s| !matches!(s, PolicySpec::Exact { .. }))
        .chain(std::iter::once(exact))
        .collect();
    let mut plan = SweepPlan::new(ctx.seed).energy(ctx.energy).policies(specs.iter().copied());
    let mut cells: Vec<(String, f64, u32)> = Vec::new();
    for layout in &layouts {
        let fabric = build_spec(layout);
        for &density in &densities {
            let (mask, dead) = seeded_fault_mask(&fabric, density, ctx.seed, cells.len() as u64);
            let mut config = SystemConfig::new(fabric);
            config.faults = (dead > 0).then_some(mask);
            config.fault_fallback = true;
            plan = plan.config(config);
            cells.push((layout.to_string(), density, dead));
        }
    }
    let runs = ctx_sweep(ctx, &plan);
    for run in &runs {
        assert!(run.all_verified(), "an oracle failed on {} under {}", run.fabric_spec, run.policy);
    }
    let per = specs.len();
    let mut rows = Vec::with_capacity(runs.len());
    for (ci, (fabric, density, dead)) in cells.iter().enumerate() {
        let duty_of = |run: &SuiteRun| {
            let cycles: u64 = run.benchmarks.iter().map(|b| b.system_cycles).sum();
            run.tracker.duty_cycles(cycles)
        };
        let exact_run = &runs[ci * per + (per - 1)];
        let exact_duty = duty_of(exact_run);
        let exact_life = ctx.aging.lifetime_years(exact_duty.max());
        for pi in 0..per {
            let run = &runs[ci * per + pi];
            let duty = duty_of(run);
            let life = ctx.aging.lifetime_years(duty.max());
            rows.push(GapRow {
                fabric: fabric.clone(),
                fault_density: *density,
                dead_fus: *dead,
                policy: run.policy.clone(),
                speedup: run.speedup(),
                worst_utilization: duty.max(),
                mean_utilization: duty.mean(),
                lifetime_years: life,
                duty_gap: if exact_duty.max() > 0.0 {
                    duty.max() / exact_duty.max()
                } else if duty.max() > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                },
                lifetime_gap: if exact_life.is_infinite() && life.is_infinite() {
                    1.0
                } else {
                    exact_life / life
                },
                offloads: run.benchmarks.iter().map(|b| b.stats.offloads).sum(),
                offloads_starved: run.benchmarks.iter().map(|b| b.stats.offloads_starved).sum(),
                verified: run.all_verified(),
            });
        }
    }
    GapReport { exact_policy: exact.to_string(), rows }
}

/// The closed-loop fleet lifetime experiment behind
/// `results/survival.json` (DESIGN.md §11): `devices` instances of the BE
/// scenario per policy (baseline plus every context policy), each running
/// its seed-derived mibench mix mission after mission while per-FU wear
/// accumulates, end-of-life FUs drop out of the allocatable fabric, and
/// the device dies when no legal placement remains. The report carries
/// per-policy survival curves, (horizon-censored) MTTF and first-failure
/// histograms; like every sweep it is byte-identical for every `--jobs`
/// value.
pub fn fig_lifetime(ctx: &ExperimentContext, devices: usize) -> FleetReport {
    let options =
        CampaignOptions { collect_metrics: ctx.collect_metrics, ..CampaignOptions::default() };
    match fig_lifetime_campaign(ctx, devices, default_lanes(devices), None, &options) {
        CampaignStatus::Complete(report) => *report,
        CampaignStatus::Paused { .. } => unreachable!("no stop was requested"),
    }
}

/// The workload lanes `fig_lifetime` uses when `--lanes` is absent: one
/// lane per device up to 8 devices (the legacy per-device-seed population),
/// 8 shared lanes beyond — so `--devices 100000` costs ~8 reference
/// trajectories per policy plus the columnar replay, not 100 000 suite
/// simulations (DESIGN.md §12).
pub fn default_lanes(devices: usize) -> usize {
    devices.min(8)
}

/// [`fig_lifetime`] with the fleet-scale knobs exposed: explicit workload
/// `lanes`, an optional shard-size override, and campaign
/// checkpoint/early-stop `options` (the `fig_lifetime` binary's
/// `--lanes/--shard/--checkpoint/--checkpoint-every/--stop-after` flags).
pub fn fig_lifetime_campaign(
    ctx: &ExperimentContext,
    devices: usize,
    lanes: usize,
    shard_devices: Option<usize>,
    options: &CampaignOptions,
) -> CampaignStatus {
    let specs: Vec<PolicySpec> =
        std::iter::once(PolicySpec::Baseline).chain(ctx.policies.iter().copied()).collect();
    let mut plan = FleetPlan::new(ctx.seed, Fabric::be())
        .policies(specs)
        .devices(devices)
        .aging(ctx.aging)
        .lanes(lanes);
    if let Some(shard) = shard_devices {
        plan = plan.shard_devices(shard);
    }
    run_fleet_campaign(&plan, ctx.jobs, options).expect("fleet runs")
}

/// The workload/traffic lanes `fleet_serve` uses when `--lanes` is
/// absent: one lane per device up to 4 — serving trajectories are heavier
/// than mission trajectories (every distinct fault mask re-measures the
/// whole suite), so the default reference pool is half the fleet one's
/// (DESIGN.md §13).
pub fn default_serve_lanes(devices: usize) -> usize {
    devices.min(4)
}

/// The live-serving fleet experiment behind `results/serving.json`
/// (DESIGN.md §13): baseline plus the context's policy series, each
/// serving the same seeded request streams (diurnal and heavy-tailed by
/// default) over `horizon_days` days with utilization-aware backpressure,
/// death-triggered replacement and cost accounting.
pub fn fleet_serve(ctx: &ExperimentContext, devices: usize, horizon_days: u64) -> ServeReport {
    let options =
        CampaignOptions { collect_metrics: ctx.collect_metrics, ..CampaignOptions::default() };
    match fleet_serve_campaign(
        ctx,
        devices,
        default_serve_lanes(devices),
        horizon_days,
        None,
        None,
        &options,
    ) {
        ServeStatus::Complete(report) => *report,
        ServeStatus::Paused { .. } => unreachable!("no stop was requested"),
    }
}

/// [`fleet_serve`] with the campaign knobs exposed: explicit lanes, an
/// optional traffic mix and shard-size override, and checkpoint/early-stop
/// `options` (the `fleet_serve` binary's flags).
pub fn fleet_serve_campaign(
    ctx: &ExperimentContext,
    devices: usize,
    lanes: usize,
    horizon_days: u64,
    traffic: Option<Vec<TrafficSpec>>,
    shard_devices: Option<usize>,
    options: &CampaignOptions,
) -> ServeStatus {
    let specs: Vec<PolicySpec> =
        std::iter::once(PolicySpec::Baseline).chain(ctx.policies.iter().copied()).collect();
    let mut plan = ServePlan::new(ctx.seed, Fabric::be())
        .policies(specs)
        .devices(devices)
        .aging(ctx.aging)
        .lanes(lanes)
        .horizon_days(horizon_days);
    if let Some(traffic) = traffic {
        plan = plan.traffic_mix(traffic);
    }
    if let Some(shard) = shard_devices {
        plan = plan.shard_devices(shard);
    }
    run_serving_campaign(&plan, ctx.jobs, options).expect("serving runs")
}

/// Table II — area/cells of the BE fabric, baseline vs modified, plus the
/// unchanged column latency.
pub fn table2(_ctx: &ExperimentContext) -> Table2Report {
    let model = AreaModel::default();
    let fabric = Fabric::be();
    let base = model.report(&fabric, false);
    let ext = model.report(&fabric, true);
    let (cell_overhead, area_overhead) = ext.overhead_vs(&base);
    let other_fabrics =
        [("fig1(4x8)", Fabric::fig1()), ("BP(32x4)", Fabric::bp()), ("BU(32x8)", Fabric::bu())]
            .iter()
            .map(|(name, f)| {
                let b = model.report(f, false);
                let e = model.report(f, true);
                let (c, a) = e.overhead_vs(&b);
                (name.to_string(), c, a)
            })
            .collect();
    // The configuration cache, sized like the system default (FinCACTI
    // substitute, DESIGN.md §3).
    let cache = cgra::config_cache_macro(&cgra::SramTech::default(), &fabric, 256);
    Table2Report {
        baseline_area_um2: base.area_um2,
        modified_area_um2: ext.area_um2,
        baseline_cells: base.cells,
        modified_cells: ext.cells,
        area_overhead,
        cell_overhead,
        baseline_delay_ps: model.column_delay_ps(&fabric, false),
        modified_delay_ps: model.column_delay_ps(&fabric, true),
        other_fabrics,
        cfg_cache_kib: cache.bits as f64 / 8.0 / 1024.0,
        cfg_cache_area_um2: cache.area_um2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transrec::run_suite;

    /// Sequential single-cell helper for reduced-suite tests (the figure
    /// runners themselves go through [`sweep_on`]).
    fn suite_on(
        fabric: Fabric,
        ctx: &ExperimentContext,
        workloads: &[Workload],
        spec: &PolicySpec,
    ) -> SuiteRun {
        let run = run_suite(fabric, workloads, &ctx.energy, spec).expect("suite runs");
        assert!(
            run.all_verified(),
            "an oracle failed on {}x{} under {spec}",
            fabric.rows,
            fabric.cols
        );
        run
    }

    #[test]
    fn convergence_rides_the_shared_settle_scan() {
        // Regression guard for the telemetry/bench consolidation: the
        // convergence report must produce exactly what the shared
        // `telemetry::settle_cycle` scan says — no ad-hoc reimplementation
        // may creep back in here.
        let series = vec![
            (0, 1.00),
            (100, 0.80),
            (200, 0.70),
            (300, 0.61),
            (400, 0.60), // settled since cycle 300: 0.70 is outside 5% of 0.60
        ];
        let report = Fig8Report {
            series: vec![Fig8Series {
                scenario: "BE".into(),
                policy: "rotation".into(),
                pdf: Vec::new(),
                delay_curve: Vec::new(),
                analytic_delay_curve: Vec::new(),
                epoch_worst: series.clone(),
                worst_utilization: 0.6,
            }],
            eol_delay_frac: 0.10,
            epoch_cycles: 100,
        };
        let conv = convergence(&report);
        assert_eq!(conv.rows.len(), 1);
        let row = &conv.rows[0];
        assert_eq!(row.settle_cycle, settle_cycle(&series, CONVERGENCE_TOLERANCE));
        assert_eq!(row.settle_cycle, 300, "0.61 is within 5% of 0.60, 0.70 is not");
        assert_eq!(row.total_cycles, 400);
        assert!((row.settle_fraction - 0.75).abs() < 1e-12);
        assert!((row.final_worst - 0.60).abs() < 1e-12);
    }

    #[test]
    fn table2_matches_paper_bands() {
        let r = table2(&ExperimentContext::default());
        // Paper: 79,540 cells / 28,995 um2 baseline; +4.45% / +4.15%.
        assert!((65_000..=95_000).contains(&r.baseline_cells), "{}", r.baseline_cells);
        assert!(r.cell_overhead > 0.0 && r.cell_overhead < 0.10);
        assert!(r.area_overhead > 0.0 && r.area_overhead < 0.10);
        assert_eq!(r.baseline_delay_ps, r.modified_delay_ps);
        assert_eq!(r.other_fabrics.len(), 3);
    }

    #[test]
    fn context_default_is_seeded_and_calibrated() {
        let ctx = ExperimentContext::default();
        assert_eq!(ctx.suite().len(), 10);
        assert_eq!(ctx.aging.anchor_years, 3.0);
        assert_eq!(ctx.aging.eol_delay_frac, 0.10);
        assert!(ctx.horizon_years >= 10.0);
        assert_eq!(ctx.proposed(), PolicySpec::rotation());
        // The default ablation set covers the three required extra series.
        let names: Vec<String> = ctx.policies.iter().map(PolicySpec::to_string).collect();
        assert!(names.contains(&"rotation:snake@per-load".to_string()), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("random:")), "{names:?}");
        assert!(names.contains(&"health-aware".to_string()), "{names:?}");
    }

    #[test]
    fn fig1_runs_on_a_reduced_suite() {
        // Full fig1 is exercised by the binary; here: the pipeline with a
        // single benchmark, checking report invariants.
        let ctx = ExperimentContext::default();
        let workloads = vec![mibench::kernels::crc32::workload(1)];
        let run = suite_on(cgra::Fabric::fig1(), &ctx, &workloads, &PolicySpec::Baseline);
        let grid = run.tracker.utilization();
        assert_eq!((grid.rows(), grid.cols()), (4, 8));
        assert!(grid.value(0, 0) > 0.9, "corner bias");
        assert!(grid.max() <= 1.0 && grid.min() >= 0.0);
    }

    #[test]
    fn default_layouts_build_and_start_uniform() {
        let layouts = default_layouts();
        assert!(layouts.len() >= 4);
        let first = layouts[0].build().expect("uniform layout builds");
        assert!(first.is_uniform(), "the first layout is the uniform reference");
        for spec in &layouts {
            let fabric = spec.build().expect("every default layout builds");
            assert_eq!((fabric.rows, fabric.cols), (4, 8));
        }
    }

    #[test]
    fn a_heterogeneous_layout_shifts_worst_fu_wear() {
        // bitcount carries `mul` anchors, so a row-striped class mix pins
        // them to capable rows: the stress distribution — and with it the
        // worst FU — must move relative to the uniform fabric (the
        // layout.json acceptance property, DESIGN.md §14).
        let ctx = ExperimentContext::default();
        let workloads = vec![mibench::kernels::bitcount::workload(1)];
        let spec = PolicySpec::rotation();
        let uniform_fabric = "4x8".parse::<FabricSpec>().unwrap().build().unwrap();
        let het_fabric = "4x8:het-rows".parse::<FabricSpec>().unwrap().build().unwrap();
        let uniform = suite_on(uniform_fabric, &ctx, &workloads, &spec);
        let het = suite_on(het_fabric, &ctx, &workloads, &spec);
        let ug = uniform.tracker.utilization();
        let hg = het.tracker.utilization();
        assert_ne!(ug.values(), hg.values(), "the class mix must reshape the stress distribution");
    }

    #[test]
    fn table1_reports_every_context_policy_per_scenario() {
        // A reduced context (one benchmark, two policies) keeps this fast
        // while pinning the row structure the acceptance criteria rely on.
        let ctx = ExperimentContext {
            policies: vec![PolicySpec::rotation(), PolicySpec::HealthAware],
            ..ExperimentContext::default()
        };
        let workloads = vec![mibench::kernels::crc32::workload(1)];
        let mut rows = Vec::new();
        for scenario in transrec::SCENARIOS.iter().take(1) {
            let base = suite_on(scenario.fabric(), &ctx, &workloads, &PolicySpec::Baseline);
            for spec in &ctx.policies {
                let run = suite_on(scenario.fabric(), &ctx, &workloads, spec);
                rows.push((
                    spec.to_string(),
                    base.tracker.utilization().max(),
                    run.tracker.utilization().max(),
                ));
            }
        }
        assert_eq!(rows.len(), 2);
        for (policy, base_worst, policy_worst) in rows {
            assert!(policy_worst <= base_worst + 1e-9, "{policy} must not worsen the corner");
        }
    }
}
