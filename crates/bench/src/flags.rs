//! The shared experiment CLI flag grammar.
//!
//! Every binary accepts the same flag shapes — repeatable spec flags
//! (`--policy`, `--fabric`, `--traffic`), last-wins count flags
//! (`--jobs`, `--devices`, …) and a path flag (`--checkpoint`) — all in
//! both `--flag value` and `--flag=value` forms, with unknown arguments
//! ignored so the flags compose with whatever else a binary accepts. One
//! scanner ([`flag_values`]) implements the grammar; every public parser
//! is a thin typed wrapper over it.

use std::path::PathBuf;

use cgra::FabricSpec;
use transrec::TrafficSpec;
use uaware::PolicySpec;

use crate::experiments::ExperimentContext;

/// Every value of the repeatable `--<flag> <v>` / `--<flag>=<v>` forms in
/// `args`, in order. Other arguments are ignored; an empty vec means the
/// flag was absent. A trailing `--<flag>` with no value errors with
/// `hint` appended.
fn flag_values(args: &[String], flag: &str, hint: &str) -> Result<Vec<String>, String> {
    let prefix = format!("{flag}=");
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            i += 1;
            match args.get(i) {
                Some(v) => values.push(v.clone()),
                None => return Err(format!("{flag} requires a value ({hint})")),
            }
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            values.push(v.to_string());
        }
        i += 1;
    }
    Ok(values)
}

/// The shared `--<flag> <n>` / `--<flag>=<n>` count parser behind
/// [`parse_jobs_flag`], [`parse_devices_flag`] and friends: every
/// occurrence must parse, the last wins, other arguments are ignored.
fn parse_count_flag(args: &[String], flag: &str, hint: &str) -> Result<Option<usize>, String> {
    let mut count = None;
    for value in flag_values(args, flag, hint)? {
        count = Some(
            value
                .parse::<usize>()
                .map_err(|_| format!("{flag} expects a non-negative integer, got `{value}`"))?,
        );
    }
    Ok(count)
}

/// Applies the shared experiment CLI flags from the process arguments to
/// `ctx`:
///
/// * repeatable `--policy <spec>` / `--policy=<spec>` flags replace
///   [`ExperimentContext::policies`] wholesale when at least one is given
///   (the first spec becomes the figure's "proposed" series), parsed with
///   [`PolicySpec`]'s [`FromStr`](std::str::FromStr) grammar, e.g.
///   `--policy rotation:snake@per-load --policy random:7`;
/// * repeatable `--fabric <spec>` / `--fabric=<spec>` flags replace
///   [`ExperimentContext::fabrics`] wholesale when at least one is given,
///   parsed with [`FabricSpec`]'s [`FromStr`](std::str::FromStr) grammar
///   (DESIGN.md §14), e.g. `--fabric 4x8:het-checker --fabric be+bw-2` —
///   the figures then run on those layouts instead of their hard-coded
///   defaults, keyed by the canonical spec string;
/// * `--jobs <n>` / `--jobs=<n>` sets [`ExperimentContext::jobs`], the
///   sweep worker count (`0` = all cores, `1` = sequential; results are
///   byte-identical for every value);
/// * `--metrics` (no value) sets
///   [`ExperimentContext::collect_metrics`]: sweeps and campaigns fold
///   the flight recorder's counter registry into the process-global sink
///   so a binary can emit `results/metrics.json` (DESIGN.md §16).
///
/// Unknown arguments are ignored so the flags compose with whatever else a
/// binary accepts.
///
/// # Errors
///
/// Returns a description of the first malformed flag (the binaries report
/// it and exit non-zero).
pub fn apply_cli_flags(ctx: &mut ExperimentContext) -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = parse_policy_flags(&args).map_err(|e| e.to_string())?;
    if !specs.is_empty() {
        ctx.policies = specs;
    }
    let fabrics = parse_fabric_flags(&args)?;
    if !fabrics.is_empty() {
        ctx.fabrics = fabrics;
    }
    if let Some(jobs) = parse_jobs_flag(&args)? {
        ctx.jobs = jobs;
    }
    if parse_metrics_flag(&args) {
        ctx.collect_metrics = true;
    }
    Ok(())
}

/// `true` when the valueless `--metrics` flag is present in `args` — the
/// opt-in for metric collection ([`ExperimentContext::collect_metrics`]).
/// Collection is off by default because the hottest counter
/// (`system.gpp_retired`) fires once per retired GPP instruction.
pub fn parse_metrics_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--metrics")
}

/// Extracts every `--fabric <spec>` / `--fabric=<spec>` occurrence from
/// `args`, in order, parsed with [`FabricSpec`]'s
/// [`FromStr`](std::str::FromStr) grammar (e.g. `--fabric 4x8:het-checker
/// --fabric be+bw-2`) and checked to build a valid fabric. Other arguments
/// are ignored; an empty vec means the flag was absent.
///
/// # Errors
///
/// Returns the parse (or build) error of the first malformed spec, or an
/// error for a trailing `--fabric` with no value.
pub fn parse_fabric_flags(args: &[String]) -> Result<Vec<FabricSpec>, String> {
    flag_values(args, "--fabric", "e.g. --fabric 4x8:het-checker")?
        .into_iter()
        .map(|value| {
            let spec = value.parse::<FabricSpec>().map_err(|e| e.to_string())?;
            spec.build().map_err(|e| format!("--fabric {value}: {e}"))?;
            Ok(spec)
        })
        .collect()
}

/// Extracts every `--policy <spec>` / `--policy=<spec>` occurrence from
/// `args`, in order. Other arguments are ignored. This is the single parser
/// behind [`apply_cli_flags`] and the `diag` binary.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec, or an error for a
/// trailing `--policy` with no value.
pub fn parse_policy_flags(args: &[String]) -> Result<Vec<PolicySpec>, uaware::ParseSpecError> {
    flag_values(args, "--policy", "e.g. --policy rotation:snake@per-load")
        .map_err(uaware::ParseSpecError::new)?
        .into_iter()
        .map(|value| value.parse::<PolicySpec>())
        .collect()
}

/// Extracts every `--traffic <spec>` / `--traffic=<spec>` occurrence from
/// `args`, in order, parsed with [`TrafficSpec`]'s
/// [`FromStr`](std::str::FromStr) grammar (e.g. `--traffic
/// diurnal@rph-6000+swing-80 --traffic heavy`). Other arguments are
/// ignored; an empty vec means the flag was absent.
///
/// # Errors
///
/// Returns the parse error of the first malformed spec, or an error for a
/// trailing `--traffic` with no value.
pub fn parse_traffic_flags(args: &[String]) -> Result<Vec<TrafficSpec>, String> {
    flag_values(args, "--traffic", "e.g. --traffic diurnal@rph-6000+swing-80")?
        .into_iter()
        .map(|value| value.parse::<TrafficSpec>())
        .collect()
}

/// Extracts the last `--jobs <n>` / `--jobs=<n>` occurrence from `args`
/// (`None` when the flag is absent). Other arguments are ignored.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--jobs`
/// with no value.
pub fn parse_jobs_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--jobs", "0 = all cores")
}

/// Extracts the last `--devices <n>` / `--devices=<n>` occurrence from
/// `args` (`None` when the flag is absent) — the fleet-size knob of the
/// `fig_lifetime` binary.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--devices`
/// with no value.
pub fn parse_devices_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--devices", "device instances per policy")
}

/// Extracts the last `--lanes <n>` / `--lanes=<n>` occurrence from `args`
/// (`None` when the flag is absent) — how many distinct workload seeds the
/// `fig_lifetime` fleet is drawn from (DESIGN.md §12).
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--lanes`
/// with no value.
pub fn parse_lanes_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--lanes", "distinct workload-seed lanes")
}

/// Extracts the last `--shard <n>` / `--shard=<n>` occurrence from `args`
/// (`None` when the flag is absent) — the fleet campaign's streaming shard
/// size. Never changes results, only memory and checkpoint granularity.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing `--shard`
/// with no value.
pub fn parse_shard_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--shard", "devices per streaming shard")
}

/// Extracts the last `--stop-after <n>` / `--stop-after=<n>` occurrence
/// from `args` (`None` when the flag is absent) — pause the fleet campaign
/// after that many shards (the CI resume leg's kill stand-in).
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing
/// `--stop-after` with no value.
pub fn parse_stop_after_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--stop-after", "shards to complete before pausing")
}

/// Extracts the last `--horizon-days <n>` / `--horizon-days=<n>`
/// occurrence from `args` (`None` when the flag is absent) — the serving
/// horizon of the `fleet_serve` binary (DESIGN.md §13).
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing
/// `--horizon-days` with no value.
pub fn parse_horizon_days_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--horizon-days", "serving days")
}

/// Extracts the last `--checkpoint-every <n>` / `--checkpoint-every=<n>`
/// occurrence from `args` (`None` when the flag is absent) — shards per
/// checkpointed wave.
///
/// # Errors
///
/// Returns a description for a malformed count or a trailing
/// `--checkpoint-every` with no value.
pub fn parse_checkpoint_every_flag(args: &[String]) -> Result<Option<usize>, String> {
    parse_count_flag(args, "--checkpoint-every", "shards per checkpointed wave")
}

/// Extracts the last `--checkpoint <path>` / `--checkpoint=<path>`
/// occurrence from `args` (`None` when the flag is absent) — where the
/// fleet campaign persists (and resumes) its progress.
///
/// # Errors
///
/// Returns a description for a trailing `--checkpoint` with no value.
pub fn parse_checkpoint_flag(args: &[String]) -> Result<Option<PathBuf>, String> {
    Ok(flag_values(args, "--checkpoint", "a file path")?.into_iter().next_back().map(PathBuf::from))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn both_flag_forms_collect_in_order() {
        let a = args(&["--policy", "baseline", "ignored", "--policy=exact", "--jobs", "3"]);
        let specs = parse_policy_flags(&a).unwrap();
        assert_eq!(specs, vec![PolicySpec::Baseline, PolicySpec::Exact { every: 1 }]);
        assert_eq!(parse_jobs_flag(&a).unwrap(), Some(3));
        assert!(parse_fabric_flags(&a).unwrap().is_empty(), "absent flag means empty");
    }

    #[test]
    fn metrics_flag_is_presence_only() {
        assert!(parse_metrics_flag(&args(&["--metrics"])));
        assert!(parse_metrics_flag(&args(&["--jobs", "2", "--metrics", "--policy", "baseline"])));
        assert!(!parse_metrics_flag(&args(&["--jobs", "2"])));
        // `--metrics=x` is not the flag's grammar (and stays ignored).
        assert!(!parse_metrics_flag(&args(&["--metrics=on"])));
    }

    #[test]
    fn count_flags_take_the_last_occurrence() {
        let a = args(&["--devices", "8", "--devices=100", "--checkpoint", "x", "--checkpoint=y"]);
        assert_eq!(parse_devices_flag(&a).unwrap(), Some(100));
        assert_eq!(parse_checkpoint_flag(&a).unwrap(), Some(PathBuf::from("y")));
    }

    #[test]
    fn trailing_and_malformed_flags_error() {
        assert!(parse_jobs_flag(&args(&["--jobs"])).is_err(), "trailing flag");
        assert!(parse_jobs_flag(&args(&["--jobs", "many"])).is_err(), "non-numeric count");
        assert!(parse_policy_flags(&args(&["--policy", "exact@every-0"])).is_err());
        assert!(parse_fabric_flags(&args(&["--fabric", "2x2"])).is_err(), "unbuildable fabric");
        assert!(parse_traffic_flags(&args(&["--traffic", "nonsense?"])).is_err());
    }

    #[test]
    fn every_count_occurrence_must_parse() {
        // Last-wins does not skip validation of earlier occurrences.
        let a = args(&["--lanes", "zz", "--lanes", "4"]);
        assert!(parse_lanes_flag(&a).is_err());
    }
}
