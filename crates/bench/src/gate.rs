//! The perf-regression gate (DESIGN.md §16): compares fresh
//! `CRITERION_SNAPSHOT` timings against the committed baseline under
//! `crates/bench/benches/baseline/` and fails on any tracked benchmark
//! whose fastest sample regressed by more than [`DEFAULT_TOLERANCE`].
//!
//! The gate compares `low_ns` (the fastest sample), not the median:
//! scheduler preemption and cache pollution on a shared runner only ever
//! *add* time, so the minimum estimates the clean per-iteration cost
//! while medians of the session-scale benches swing 20–70% run to run —
//! far past any useful tolerance. A real regression slows every sample,
//! the minimum included.
//!
//! The `bench_gate` binary is the CI entry point; this module holds the
//! comparison so it stays unit-testable. Baselines are machine-dependent
//! wall-clock timings, so the gate ships an escape hatch: after an
//! intentional perf change (or a runner upgrade), re-run the benches with
//! snapshots on and pass `--rebaseline` to overwrite the committed files
//! with the fresh ones — the diff then documents the new trajectory.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use criterion::SnapshotEntry;

/// Relative fastest-sample growth beyond which a benchmark counts as
/// regressed (`fresh > (1 + tolerance) × baseline`).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// The committed baseline directory (`crates/bench/benches/baseline`).
pub fn default_baseline_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benches").join("baseline")
}

/// How one tracked benchmark fared against its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance (or faster).
    Pass,
    /// Fastest sample grew beyond the tolerance.
    Regressed,
    /// Present in the fresh snapshot only — joins the baseline on the
    /// next `--rebaseline`, never fails the gate.
    New,
    /// Present in the baseline but not measured fresh — a dropped or
    /// renamed bench; fails the gate so the baseline cannot go stale
    /// silently.
    Missing,
}

impl fmt::Display for GateStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GateStatus::Pass => "ok",
            GateStatus::Regressed => "REGRESSED",
            GateStatus::New => "new",
            GateStatus::Missing => "MISSING",
        })
    }
}

/// One benchmark's comparison row.
#[derive(Clone, Debug, PartialEq)]
pub struct GateRow {
    /// Benchmark id (`group/function` as recorded in the snapshot).
    pub id: String,
    /// Committed fastest sample, ns/iter (0 for [`GateStatus::New`]).
    pub baseline_ns: u64,
    /// Fresh fastest sample, ns/iter (0 for [`GateStatus::Missing`]).
    pub fresh_ns: u64,
    /// `fresh / baseline` (1.0 when either side is absent).
    pub ratio: f64,
    /// The verdict.
    pub status: GateStatus,
}

/// The whole gate run: per-benchmark rows in id order plus the verdict.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateOutcome {
    /// Per-benchmark rows, id order.
    pub rows: Vec<GateRow>,
}

impl GateOutcome {
    /// Rows with a failing status ([`Regressed`](GateStatus::Regressed)
    /// or [`Missing`](GateStatus::Missing)).
    pub fn failures(&self) -> impl Iterator<Item = &GateRow> {
        self.rows.iter().filter(|r| matches!(r.status, GateStatus::Regressed | GateStatus::Missing))
    }

    /// `true` when every tracked benchmark passed.
    pub fn passed(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Renders the aligned report table the binary prints.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let width = self.rows.iter().map(|r| r.id.len()).max().unwrap_or(9).max(9);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<width$} {:>14} {:>14} {:>8}  status",
            "benchmark", "base-min[ns]", "fresh-min[ns]", "ratio"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$} {:>14} {:>14} {:>8.3}  {}",
                r.id, r.baseline_ns, r.fresh_ns, r.ratio, r.status
            );
        }
        out
    }
}

/// Loads and merges every snapshot in `paths` (id collisions: last wins,
/// matching the snapshot files' own merge-write semantics).
///
/// # Errors
///
/// Returns a description of the first unreadable or unparsable file.
pub fn load_snapshots(paths: &[PathBuf]) -> Result<BTreeMap<String, SnapshotEntry>, String> {
    let mut merged = BTreeMap::new();
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let entries: BTreeMap<String, SnapshotEntry> =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        merged.extend(entries);
    }
    Ok(merged)
}

/// Every `*.json` under `dir`, sorted (the committed baseline set).
///
/// # Errors
///
/// Returns a description when the directory cannot be read.
pub fn baseline_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read baseline dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    Ok(files)
}

/// Compares fresh fastest samples against the baseline: regressed means
/// the fresh `low_ns` exceeds `(1 + tolerance) ×` the committed one (the
/// minimum is the noise-robust estimator — see the module docs).
pub fn compare(
    baseline: &BTreeMap<String, SnapshotEntry>,
    fresh: &BTreeMap<String, SnapshotEntry>,
    tolerance: f64,
) -> GateOutcome {
    let mut rows = Vec::new();
    for (id, base) in baseline {
        let row = match fresh.get(id) {
            Some(new) => {
                let ratio =
                    if base.low_ns == 0 { 1.0 } else { new.low_ns as f64 / base.low_ns as f64 };
                GateRow {
                    id: id.clone(),
                    baseline_ns: base.low_ns,
                    fresh_ns: new.low_ns,
                    ratio,
                    status: if ratio > 1.0 + tolerance {
                        GateStatus::Regressed
                    } else {
                        GateStatus::Pass
                    },
                }
            }
            None => GateRow {
                id: id.clone(),
                baseline_ns: base.low_ns,
                fresh_ns: 0,
                ratio: 1.0,
                status: GateStatus::Missing,
            },
        };
        rows.push(row);
    }
    for (id, new) in fresh {
        if !baseline.contains_key(id) {
            rows.push(GateRow {
                id: id.clone(),
                baseline_ns: 0,
                fresh_ns: new.low_ns,
                ratio: 1.0,
                status: GateStatus::New,
            });
        }
    }
    rows.sort_by(|a, b| a.id.cmp(&b.id));
    GateOutcome { rows }
}

/// The `--rebaseline` escape hatch: copies each fresh snapshot file into
/// `baseline_dir` under its own file name, so the committed baseline
/// mirrors CI's snapshot grouping and the git diff documents the new
/// trajectory.
///
/// # Errors
///
/// Returns a description of the first failing copy.
pub fn rebaseline(baseline_dir: &Path, fresh_paths: &[PathBuf]) -> Result<(), String> {
    std::fs::create_dir_all(baseline_dir)
        .map_err(|e| format!("create {}: {e}", baseline_dir.display()))?;
    for path in fresh_paths {
        let name =
            path.file_name().ok_or_else(|| format!("{} has no file name", path.display()))?;
        let dest = baseline_dir.join(name);
        std::fs::copy(path, &dest)
            .map_err(|e| format!("copy {} -> {}: {e}", path.display(), dest.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(median_ns: u64) -> SnapshotEntry {
        SnapshotEntry {
            median_ns,
            low_ns: median_ns,
            high_ns: median_ns,
            samples: 20,
            iters_per_sample: 100,
        }
    }

    fn snapshot(pairs: &[(&str, u64)]) -> BTreeMap<String, SnapshotEntry> {
        pairs.iter().map(|(id, ns)| (id.to_string(), entry(*ns))).collect()
    }

    #[test]
    fn a_20_percent_regression_fails_the_gate() {
        // The acceptance property: a synthetic +20% regression on one
        // tracked bench must fail a 15% gate.
        let baseline = snapshot(&[("session/step", 1_000), ("solve/bnb", 4_000)]);
        let fresh = snapshot(&[("session/step", 1_200), ("solve/bnb", 4_000)]);
        let outcome = compare(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert!(!outcome.passed(), "a 20% regression must fail:\n{}", outcome.render_table());
        let failures: Vec<&GateRow> = outcome.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].id, "session/step");
        assert_eq!(failures[0].status, GateStatus::Regressed);
        assert!((failures[0].ratio - 1.2).abs() < 1e-9);
    }

    #[test]
    fn within_tolerance_and_speedups_pass() {
        let baseline = snapshot(&[("a", 1_000), ("b", 1_000), ("c", 1_000)]);
        // +14.9% squeaks under a 15% gate; faster always passes.
        let fresh = snapshot(&[("a", 1_149), ("b", 500), ("c", 1_000)]);
        let outcome = compare(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{}", outcome.render_table());
        assert!(outcome.rows.iter().all(|r| r.status == GateStatus::Pass));
    }

    #[test]
    fn new_benches_pass_but_dropped_benches_fail() {
        let baseline = snapshot(&[("kept", 1_000), ("dropped", 1_000)]);
        let fresh = snapshot(&[("kept", 1_000), ("added", 9_999)]);
        let outcome = compare(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert!(!outcome.passed(), "a silently dropped bench must fail the gate");
        let by_id = |id: &str| outcome.rows.iter().find(|r| r.id == id).unwrap().status;
        assert_eq!(by_id("kept"), GateStatus::Pass);
        assert_eq!(by_id("added"), GateStatus::New);
        assert_eq!(by_id("dropped"), GateStatus::Missing);
    }

    #[test]
    fn snapshots_merge_and_rebaseline_round_trips() {
        let dir = std::env::temp_dir().join(format!("uaware-gate-{}", std::process::id()));
        let fresh_dir = dir.join("fresh");
        let base_dir = dir.join("baseline");
        std::fs::create_dir_all(&fresh_dir).unwrap();
        let a = fresh_dir.join("BENCH_a.json");
        let b = fresh_dir.join("BENCH_b.json");
        std::fs::write(&a, serde_json::to_string(&snapshot(&[("x", 10)])).unwrap()).unwrap();
        std::fs::write(&b, serde_json::to_string(&snapshot(&[("y", 20)])).unwrap()).unwrap();
        let fresh_paths = vec![a, b];

        let fresh = load_snapshots(&fresh_paths).unwrap();
        assert_eq!(fresh.len(), 2, "snapshot files merge");

        rebaseline(&base_dir, &fresh_paths).unwrap();
        let files = baseline_files(&base_dir).unwrap();
        assert_eq!(files.len(), 2, "one baseline file per fresh file");
        let reloaded = load_snapshots(&files).unwrap();
        assert_eq!(reloaded, fresh, "rebaseline preserves every entry");
        assert!(compare(&reloaded, &fresh, DEFAULT_TOLERANCE).passed());

        std::fs::remove_dir_all(&dir).ok();
    }
}
