//! Whole-system simulation throughput: one benchmark through the full
//! GPP + DBT + CGRA pipeline, and the GPP-only reference — this bounds how
//! fast the paper's experiments regenerate.

use criterion::{criterion_group, criterion_main, Criterion};

use cgra::Fabric;
use transrec::{run_gpp_only, System, SystemConfig};
use uaware::PolicySpec;

fn bench_end_to_end(c: &mut Criterion) {
    let workloads = mibench::suite(0xDAC2020);
    let crc = &workloads[1];
    let cfg = SystemConfig::new(Fabric::be());

    let mut group = c.benchmark_group("end_to_end_crc32");
    group.sample_size(20);
    group.bench_function("gpp_only", |b| {
        b.iter(|| run_gpp_only(crc.program(), cfg.mem_size, cfg.timing, cfg.max_steps).unwrap())
    });
    group.bench_function("system_baseline", |b| {
        b.iter(|| {
            let mut sys = System::builder(Fabric::be()).build().unwrap();
            sys.run(crc.program()).unwrap();
            sys.cpu().cycles()
        })
    });
    group.bench_function("system_rotation", |b| {
        b.iter(|| {
            let mut sys =
                System::builder(Fabric::be()).policy(PolicySpec::rotation()).build().unwrap();
            sys.run(crc.program()).unwrap();
            sys.cpu().cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
