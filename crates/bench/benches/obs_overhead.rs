//! Flight-recorder overhead (DESIGN.md §16): the same crc32 system run
//! with tracing disabled (the shipping default — every instrumentation
//! site collapses to one relaxed atomic load) and with a metrics
//! collector attached, plus the disabled `event!` check in isolation.
//! The untraced/collected pair pins the acceptance bound: the disabled
//! recorder must stay within noise (<2%) of the uninstrumented trajectory
//! the committed baseline records.

use criterion::{criterion_group, criterion_main, Criterion};

use cgra::Fabric;
use tracing::{event, Level};
use transrec::System;

fn run_crc(program: &rv32::Program) -> u64 {
    let mut sys = System::builder(Fabric::be()).build().unwrap();
    sys.run(program).unwrap();
    sys.cpu().cycles()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let workloads = mibench::suite(0xDAC2020);
    let crc = &workloads[1];

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("step_untraced", |b| b.iter(|| run_crc(crc.program())));
    group.bench_function("step_collected", |b| {
        b.iter(|| {
            let (cycles, registry) = obs::collect(|| run_crc(crc.program()));
            assert!(!registry.is_empty(), "the collector must see the run");
            cycles
        })
    });
    // The disabled fast path in isolation: one relaxed atomic load and a
    // branch — the cost every `event!` site pays when nobody listens.
    group.bench_function("disabled_event", |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                event!(Level::TRACE, "bench.noop", "add" = 1);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
