//! Ablation (DESIGN.md §4.4): how the movement granularity trades balancing
//! quality against rotation overhead. Reported as simulated worst-FU
//! utilization via a custom Criterion measurement of the run, plus wall
//! time of the simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra::Fabric;
use transrec::{System, SystemConfig};
use uaware::{AllocationPolicy, MovementGranularity, RotationPolicy, Snake};

fn run_once(granularity: MovementGranularity) -> (f64, u64) {
    let w = &mibench::suite(0xDAC2020)[1]; // crc32
    let policy: Box<dyn AllocationPolicy> =
        Box::new(RotationPolicy::with_granularity(Snake, granularity));
    let mut sys = System::new(SystemConfig::new(Fabric::be()), policy);
    sys.run(w.program()).unwrap();
    w.verify(sys.cpu()).unwrap();
    (sys.tracker().utilization().max(), sys.cpu().cycles())
}

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_granularity");
    group.sample_size(10);
    for (name, g) in [
        ("per_execution", MovementGranularity::PerExecution),
        ("periodic_8", MovementGranularity::Periodic(8)),
        ("periodic_64", MovementGranularity::Periodic(64)),
        ("per_load", MovementGranularity::PerLoad),
    ] {
        // Print the quality metrics once per configuration so the ablation
        // result appears alongside the timing.
        let (worst, cycles) = run_once(g);
        eprintln!("[ablation_granularity] {name}: worst-FU {:.1}%, {cycles} cycles", 100.0 * worst);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| run_once(*g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
