//! DBT translation throughput: how fast the greedy placer maps instruction
//! traces onto fabrics of different sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cgra::Fabric;
use dbt::translate::{translate_prefix, TranslatorParams};
use rv32::isa::{AluOp, Instr, LoadWidth, Reg};

/// A mixed ALU/memory trace resembling a hot loop body.
fn trace(len: usize) -> Vec<Instr> {
    (0..len)
        .map(|i| match i % 5 {
            0 => Instr::Load {
                width: LoadWidth::W,
                rd: Reg::x(10 + (i % 4) as u8),
                rs1: Reg::x(8),
                offset: (4 * (i % 32)) as i32,
            },
            1 => Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::x(11),
                rs1: Reg::x(10),
                imm: i as i32 % 100,
            },
            2 => Instr::Op { op: AluOp::Xor, rd: Reg::x(12), rs1: Reg::x(11), rs2: Reg::x(10) },
            3 => Instr::Op { op: AluOp::Sll, rd: Reg::x(13), rs1: Reg::x(12), rs2: Reg::x(11) },
            _ => Instr::Op { op: AluOp::Add, rd: Reg::x(14), rs1: Reg::x(13), rs2: Reg::x(12) },
        })
        .collect()
}

fn bench_translate(c: &mut Criterion) {
    let params = TranslatorParams { min_instrs: 1, max_instrs: 512 };
    let mut group = c.benchmark_group("dbt_translate");
    for (name, fabric) in [("BE", Fabric::be()), ("BP", Fabric::bp()), ("BU", Fabric::bu())] {
        for len in [8usize, 32, 128] {
            let instrs = trace(len);
            group.bench_with_input(BenchmarkId::new(name, len), &instrs, |b, instrs| {
                b.iter(|| translate_prefix(&fabric, &params, 0x1000, black_box(instrs)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
