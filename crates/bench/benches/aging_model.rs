//! NBTI model evaluation cost: Eq. 1 point evaluations, lifetime solves and
//! full delay-curve sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nbti::{CalibratedAging, NbtiModel};
use uaware::UtilizationGrid;

fn bench_aging(c: &mut Criterion) {
    let raw = NbtiModel::default();
    let cal = CalibratedAging::default();
    c.bench_function("nbti_delta_vt", |b| b.iter(|| raw.delta_vt(black_box(3.0), black_box(0.42))));
    c.bench_function("nbti_lifetime", |b| b.iter(|| cal.lifetime_years(black_box(0.42))));
    c.bench_function("nbti_delay_curve_101", |b| {
        b.iter(|| cal.delay_curve(black_box(0.42), 10.0, 101))
    });
    let values: Vec<f64> = (0..256).map(|i| (i % 100) as f64 / 100.0).collect();
    let grid = UtilizationGrid::from_values(8, 32, values);
    c.bench_function("grid_stats_256", |b| {
        b.iter(|| {
            let g = black_box(&grid);
            (g.max(), g.mean(), g.cov(), g.gini())
        })
    });
    c.bench_function("grid_histogram_256", |b| b.iter(|| black_box(&grid).histogram(20)));
}

criterion_group!(benches, bench_aging);
criterion_main!(benches);
