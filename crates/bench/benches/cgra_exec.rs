//! Fabric execution speed: simulator throughput for configurations of
//! growing depth, at the origin and at a wrapped offset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cgra::{ArrayMem, Executor, Fabric, Offset};
use dbt::translate::{translate_prefix, TranslatorParams};
use rv32::isa::{AluOp, Instr, Reg};

fn chain_config(fabric: &Fabric, len: usize) -> dbt::CachedConfig {
    let instrs: Vec<Instr> = (0..len)
        .map(|i| Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: i as i32 % 7 })
        .collect();
    translate_prefix(fabric, &TranslatorParams { min_instrs: 1, max_instrs: 512 }, 0, &instrs)
        .unwrap()
}

fn bench_execute(c: &mut Criterion) {
    let fabric = Fabric::bp();
    let exec = Executor::new(&fabric);
    let mut group = c.benchmark_group("cgra_execute");
    for len in [4usize, 16, 32] {
        let cc = chain_config(&fabric, len);
        let inputs: Vec<u32> = cc.input_regs.iter().map(|_| 5).collect();
        for (tag, off) in [("origin", Offset::ORIGIN), ("wrapped", Offset::new(3, 29))] {
            group.bench_with_input(BenchmarkId::new(tag, len), &cc, |b, cc| {
                let mut mem = ArrayMem::new(64);
                b.iter(|| exec.execute(black_box(&cc.config), off, &inputs, &mut mem).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_execute);
criterion_main!(benches);
