//! Cost of the exact-mapping oracle (DESIGN.md §15): a single-slot
//! re-solve per decision (what `exact` pays on every allocation), a joint
//! multi-slot epoch solve, and the raw branch-and-bound core on the
//! classic makespan instance the greedy incumbent cannot close.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cgra::Fabric;
use solve::{OffsetProblem, TableProblem};
use uaware::{AllocRequest, AllocationPolicy, ExactPolicy, UtilizationTracker};

fn bench_solve(c: &mut Criterion) {
    let fabric = Fabric::fig1();
    let mut tracker = UtilizationTracker::new(&fabric);
    let footprint: Vec<(u32, u32)> = (0..6u32).map(|i| (i % 2, i % 8)).collect();
    for i in 0..1000u32 {
        tracker.record_execution(&[(i % 4, i % 8)], 2);
    }

    let mut group = c.benchmark_group("exact_solve");
    group.bench_function("offset_single_slot", |b| {
        b.iter(|| {
            let problem = OffsetProblem::new(
                &fabric,
                black_box(&footprint),
                tracker.stress_counts(),
                1,
                |_| true,
            );
            solve::solve(&problem)
        })
    });
    group.bench_function("offset_epoch_of_4", |b| {
        b.iter(|| {
            let problem = OffsetProblem::new(
                &fabric,
                black_box(&footprint),
                tracker.stress_counts(),
                4,
                |_| true,
            );
            solve::solve(&problem)
        })
    });
    group.bench_function("policy_decision_exact", |b| {
        let mut policy = ExactPolicy::new(1);
        b.iter(|| {
            let req = AllocRequest {
                fabric: &fabric,
                config_switch: false,
                footprint: black_box(&footprint),
                demands: &[],
                tracker: &tracker,
                faults: None,
            };
            policy.next_offset(&req)
        })
    });
    group.bench_function("makespan_5_jobs_2_machines", |b| {
        let problem = TableProblem::machines(black_box(&[3, 3, 2, 2, 2]), 2);
        b.iter(|| solve::solve(black_box(&problem)))
    });
    group.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
