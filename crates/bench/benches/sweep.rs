//! Sweep-engine throughput: the same 8-cell policy × fabric plan at one
//! worker vs four. Cells are independent full-system simulations, so the
//! 4-worker run should approach 4× and must clear the 1.5× acceptance bar
//! on any ≥4-core machine — with byte-identical results either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra::Fabric;
use transrec::{run_sweep, SuiteSpec, SweepPlan};
use uaware::PolicySpec;

/// 2 fabrics × 4 policies × 1 two-benchmark suite lane = 8 cells.
fn mini_plan() -> SweepPlan {
    SweepPlan::new(0xDAC2020)
        .fabric(Fabric::be())
        .fabric(Fabric::bp())
        .policies([
            PolicySpec::Baseline,
            PolicySpec::rotation(),
            PolicySpec::Random { seed: uaware::DEFAULT_RANDOM_SEED },
            PolicySpec::HealthAware,
        ])
        .suites(vec![SuiteSpec::subset("mini", vec![0, 1])]) // bitcount, crc32
}

fn bench_sweep(c: &mut Criterion) {
    let plan = mini_plan();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let runs = run_sweep(&plan, jobs).expect("sweep runs");
                assert_eq!(runs.len(), 8);
                runs.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
