//! Ablation (DESIGN.md §7): movement patterns compared — snake (the
//! paper's Fig. 3b), raster, column-major, and uniform random, plus the
//! health-aware oracle as the balancing upper bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra::Fabric;
use transrec::{System, SystemConfig};
use uaware::{
    AllocationPolicy, ColumnMajor, HealthAwarePolicy, PolicyFactory, RandomPolicy, Raster,
    RotationPolicy, Snake,
};

fn run_once(make: &dyn Fn() -> Box<dyn AllocationPolicy>) -> (f64, f64) {
    let w = &mibench::suite(0xDAC2020)[1];
    let mut sys = System::new(SystemConfig::new(Fabric::be()), make());
    sys.run(w.program()).unwrap();
    w.verify(sys.cpu()).unwrap();
    let grid = sys.tracker().utilization();
    (grid.max(), grid.cov())
}

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_patterns");
    group.sample_size(10);
    let entries: Vec<(&str, PolicyFactory)> = vec![
        ("snake", Box::new(|| Box::new(RotationPolicy::new(Snake)))),
        ("raster", Box::new(|| Box::new(RotationPolicy::new(Raster)))),
        ("column_major", Box::new(|| Box::new(RotationPolicy::new(ColumnMajor)))),
        ("random", Box::new(|| Box::new(RandomPolicy::seeded(17)))),
        ("health_aware", Box::new(|| Box::new(HealthAwarePolicy))),
    ];
    for (name, make) in &entries {
        let (worst, cov) = run_once(make.as_ref());
        eprintln!("[ablation_patterns] {name}: worst-FU {:.1}%, CoV {:.3}", 100.0 * worst, cov);
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            b.iter(|| run_once(make.as_ref()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
