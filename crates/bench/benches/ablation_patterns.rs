//! Ablation (DESIGN.md §7): movement patterns compared — snake (the
//! paper's Fig. 3b), raster, column-major, and uniform random, plus the
//! health-aware oracle as the balancing upper bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra::Fabric;
use transrec::System;
use uaware::PolicySpec;

fn run_once(spec: &PolicySpec) -> (f64, f64) {
    let w = &mibench::suite(0xDAC2020)[1];
    let mut sys = System::builder(Fabric::be()).policy(*spec).build().unwrap();
    sys.run(w.program()).unwrap();
    w.verify(sys.cpu()).unwrap();
    let grid = sys.tracker().utilization();
    (grid.max(), grid.cov())
}

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_patterns");
    group.sample_size(10);
    let entries: Vec<PolicySpec> =
        ["rotation:snake", "rotation:raster", "rotation:column-major", "random:17", "health-aware"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
    for spec in &entries {
        let name = spec.to_string();
        let (worst, cov) = run_once(spec);
        eprintln!("[ablation_patterns] {name}: worst-FU {:.1}%, CoV {:.3}", 100.0 * worst, cov);
        group.bench_with_input(BenchmarkId::from_parameter(&name), spec, |b, spec| {
            b.iter(|| run_once(spec))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
