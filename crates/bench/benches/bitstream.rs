//! Bitstream encode/decode/rotate costs — the software model of what the
//! reconfiguration unit does per configuration load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cgra::{Bitstream, Fabric, Offset, ReconfigUnit};
use dbt::translate::{translate_prefix, TranslatorParams};
use rv32::isa::{AluOp, Instr, Reg};

fn full_config(fabric: &Fabric) -> cgra::Configuration {
    let instrs: Vec<Instr> = (0..(fabric.cols as usize))
        .map(|i| Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: i as i32 })
        .collect();
    translate_prefix(fabric, &TranslatorParams { min_instrs: 1, max_instrs: 512 }, 0, &instrs)
        .unwrap()
        .config
}

fn bench_bitstream(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitstream");
    for (name, fabric) in [("BE", Fabric::be()), ("BU", Fabric::bu())] {
        let config = full_config(&fabric);
        let bs = Bitstream::encode(&fabric, &config);
        group.bench_with_input(BenchmarkId::new("encode", name), &config, |b, cfg| {
            b.iter(|| Bitstream::encode(&fabric, black_box(cfg)))
        });
        group.bench_with_input(BenchmarkId::new("decode", name), &bs, |b, bs| {
            b.iter(|| black_box(bs).decode_ops(&fabric).unwrap())
        });
        let unit = ReconfigUnit::with_movement();
        group.bench_with_input(BenchmarkId::new("load_rotated", name), &bs, |b, bs| {
            b.iter(|| unit.load(&fabric, black_box(bs), Offset::new(1, 7)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitstream);
criterion_main!(benches);
