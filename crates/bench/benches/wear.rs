//! Hot paths of the closed-loop lifetime engine (DESIGN.md §11, §12): the
//! per-mission wear update (equivalent-age composition across every FU),
//! the columnar fleet-batch advance the shard replay runs on, and the
//! fault-masked allocation decision policies pay once dead FUs constrain
//! placement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cgra::{Fabric, FaultMask};
use lifetime::{WearBatch, WearGrid};
use nbti::CalibratedAging;
use uaware::{
    AllocRequest, AllocationPolicy, HealthAwarePolicy, RotationPolicy, Snake, UtilizationGrid,
    UtilizationTracker,
};

fn bench_wear_update(c: &mut Criterion) {
    let fabric = Fabric::bu(); // 256 FUs: the largest paper scenario
    let aging = CalibratedAging::default();
    let n = fabric.fu_count() as usize;
    let duty = UtilizationGrid::from_values(
        fabric.rows,
        fabric.cols,
        (0..n).map(|i| (i % 97) as f64 / 96.0).collect(),
    );
    let mut group = c.benchmark_group("wear_update");
    group.bench_function("advance_256fu_mission", |b| {
        let mut grid = WearGrid::new(&fabric, aging);
        b.iter(|| {
            grid.advance(black_box(&duty), 0.25);
            black_box(grid.worst_delay_frac())
        })
    });
    // The columnar fleet path (DESIGN.md §12): one mission folded into a
    // 256-device class on the contiguous slab — per-device cost is what
    // `fig_lifetime --devices 100000` pays per replayed mission.
    group.bench_function("batch_advance_256dev_class", |b| {
        let mut batch = WearBatch::new(&fabric, aging, 256);
        let lanes: Vec<usize> = (0..256).collect();
        b.iter(|| black_box(batch.advance_class(black_box(&lanes), &duty, 0.25)))
    });
    group.finish();
}

fn bench_fault_masked_allocation(c: &mut Criterion) {
    let fabric = Fabric::bu();
    let mut tracker = UtilizationTracker::new(&fabric);
    let footprint: Vec<(u32, u32)> = (0..16u32).map(|i| (i % 8, i)).collect();
    for i in 0..1000u32 {
        tracker.record_execution(&[(i % 8, i % 32)], 4);
    }
    // A part-worn fabric: every seventh FU has failed.
    let mut mask = FaultMask::healthy(&fabric);
    for i in (0..fabric.fu_count()).step_by(7) {
        mask.mark_dead(i / fabric.cols, i % fabric.cols);
    }

    let mut group = c.benchmark_group("fault_masked_allocation");
    let mut bench_one = |name: &str, policy: &mut dyn AllocationPolicy| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let req = AllocRequest {
                    fabric: &fabric,
                    config_switch: false,
                    footprint: black_box(&footprint),
                    demands: &[],
                    tracker: &tracker,
                    faults: Some(&mask),
                };
                policy.next_offset(&req)
            })
        });
    };
    bench_one("rotation_snake_masked", &mut RotationPolicy::new(Snake));
    bench_one("health_aware_masked", &mut HealthAwarePolicy);
    group.finish();
}

criterion_group!(benches, bench_wear_update, bench_fault_masked_allocation);
criterion_main!(benches);
