//! Per-decision cost of each allocation policy — the "lightweight yet
//! effective" argument of paper §III quantified: the rotation policy is a
//! counter plus index math, while the health-aware oracle scans every pivot.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cgra::op::{MulFunc, OpKind};
use cgra::{CellClass, ClassMap, Fabric};
use uaware::{
    AllocRequest, AllocationPolicy, BaselinePolicy, HealthAwarePolicy, RandomPolicy,
    RotationPolicy, Snake, UtilizationTracker,
};

fn bench_policies(c: &mut Criterion) {
    let fabric = Fabric::bu(); // worst case for the oracle scan
    let mut tracker = UtilizationTracker::new(&fabric);
    let footprint: Vec<(u32, u32)> = (0..16u32).map(|i| (i % 8, i)).collect();
    for i in 0..1000u32 {
        tracker.record_execution(&[(i % 8, i % 32)], 4);
    }

    let mut group = c.benchmark_group("policy_decision");
    let mut bench_one = |name: &str, policy: &mut dyn AllocationPolicy| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let req = AllocRequest {
                    fabric: &fabric,
                    config_switch: false,
                    footprint: black_box(&footprint),
                    demands: &[],
                    tracker: &tracker,
                    faults: None,
                };
                policy.next_offset(&req)
            })
        });
    };
    bench_one("baseline", &mut BaselinePolicy);
    bench_one("rotation_snake", &mut RotationPolicy::new(Snake));
    bench_one("random", &mut RandomPolicy::seeded(3));
    bench_one("health_aware_oracle", &mut HealthAwarePolicy);
    group.finish();
}

/// Per-decision cost on a heterogeneous fabric (DESIGN.md §14): the class
/// checker halves the capable anchors, so every policy pays the
/// capability filter on top of its scan.
fn bench_policies_heterogeneous(c: &mut Criterion) {
    let mut fabric = Fabric::bu();
    fabric.classes = ClassMap::Checker;
    assert!(!fabric.is_uniform());
    assert_eq!(fabric.class_of(0, 0), CellClass::Full);
    let mut tracker = UtilizationTracker::new(&fabric);
    let footprint: Vec<(u32, u32)> = (0..16u32).map(|i| (i % 8, i)).collect();
    let demands = [(0u32, 0u32, OpKind::Mul(MulFunc::Mul))];
    for i in 0..1000u32 {
        tracker.record_execution(&[(i % 8, i % 32)], 4);
    }

    let mut group = c.benchmark_group("policy_decision_het");
    let mut bench_one = |name: &str, policy: &mut dyn AllocationPolicy| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let req = AllocRequest {
                    fabric: &fabric,
                    config_switch: false,
                    footprint: black_box(&footprint),
                    demands: black_box(&demands),
                    tracker: &tracker,
                    faults: None,
                };
                policy.next_offset(&req)
            })
        });
    };
    bench_one("baseline_het_checker", &mut BaselinePolicy);
    bench_one("rotation_snake_het_checker", &mut RotationPolicy::new(Snake));
    bench_one("random_het_checker", &mut RandomPolicy::seeded(3));
    bench_one("health_aware_het_checker", &mut HealthAwarePolicy);
    group.finish();
}

criterion_group!(benches, bench_policies, bench_policies_heterogeneous);
criterion_main!(benches);
