//! End-to-end correctness: every benchmark, executed through the full
//! GPP + DBT + CGRA system under every allocation policy, must produce
//! bit-exactly the results of its native Rust oracle.

use cgra::Fabric;
use transrec::{System, SystemConfig};
use uaware::PolicySpec;

fn policies() -> Vec<PolicySpec> {
    vec![PolicySpec::Baseline, PolicySpec::rotation(), PolicySpec::Random { seed: 99 }]
}

#[test]
fn suite_verifies_under_every_policy_on_be() {
    let workloads = mibench::suite(2026);
    for spec in policies() {
        for w in &workloads {
            let mut sys = System::builder(Fabric::be()).policy(spec).build().unwrap();
            sys.run(w.program()).unwrap_or_else(|e| panic!("{}/{spec}: {e}", w.name()));
            w.verify(sys.cpu()).unwrap_or_else(|e| panic!("policy {spec}: {e}"));
            assert!(sys.stats().offloads > 0, "{}/{spec}: nothing offloaded", w.name());
        }
    }
}

#[test]
fn suite_verifies_on_all_scenarios() {
    let workloads = mibench::suite(7);
    for scenario in transrec::SCENARIOS {
        for w in &workloads {
            let mut sys =
                System::builder(scenario.fabric()).policy(PolicySpec::rotation()).build().unwrap();
            sys.run(w.program()).unwrap_or_else(|e| panic!("{}/{}: {e}", w.name(), scenario.name));
            w.verify(sys.cpu()).unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
    }
}

#[test]
fn health_aware_policy_is_also_correct() {
    // The oracle-scanning policy is the slowest; one benchmark suffices.
    let w = &mibench::suite(3)[1]; // crc32
    let mut sys = System::builder(Fabric::be()).policy(PolicySpec::HealthAware).build().unwrap();
    sys.run(w.program()).unwrap();
    w.verify(sys.cpu()).unwrap();
}

#[test]
fn system_matches_gpp_architectural_state() {
    // Not just the oracle regions: the whole data segment must match the
    // plain interpreter after the run.
    let cfg = SystemConfig::new(Fabric::bp());
    for w in mibench::suite(11) {
        let gpp =
            transrec::run_gpp_only(w.program(), cfg.mem_size, cfg.timing, cfg.max_steps).unwrap();
        let mut sys = System::builder(cfg.fabric).policy(PolicySpec::rotation()).build().unwrap();
        sys.run(w.program()).unwrap();
        let base = w.program().data_base;
        let len = (w.program().data.len() as u32).max(4);
        assert_eq!(
            gpp.mem.read_bytes(base, len).unwrap(),
            sys.cpu().mem.read_bytes(base, len).unwrap(),
            "data segment differs for {}",
            w.name()
        );
    }
}

#[test]
fn offload_heuristic_never_changes_results() {
    let w = &mibench::suite(5)[3]; // qsort (branchy: exercises mixed execution)
    let run = |heuristic: bool| {
        let mut sys = System::builder(Fabric::be()).offload_heuristic(heuristic).build().unwrap();
        sys.run(w.program()).unwrap();
        w.verify(sys.cpu()).unwrap();
        sys.cpu().retired() + sys.stats().offloaded_instrs
    };
    // Both modes verify; instruction totals are identical work.
    let with = run(true);
    let without = run(false);
    assert_eq!(with, without, "same dynamic instruction stream either way");
}
