//! The paper's core claims about the rotation mechanism, tested end-to-end:
//! movement never changes results, it flattens the utilization
//! distribution, and the balancing follows the movement pattern/granularity.

use cgra::Fabric;
use transrec::{System, SystemConfig};
use uaware::{
    AllocationPolicy, BaselinePolicy, ColumnMajor, MovementGranularity, Raster, RotationPolicy,
    Snake,
};

fn run_with(policy: Box<dyn AllocationPolicy>, seed: u64) -> System {
    let w = &mibench::suite(seed)[1]; // crc32: dense hot loop
    let mut sys = System::new(SystemConfig::new(Fabric::be()), policy);
    sys.run(w.program()).unwrap();
    w.verify(sys.cpu()).unwrap();
    sys
}

#[test]
fn rotation_flattens_utilization_on_every_benchmark() {
    for (i, w) in mibench::suite(1).iter().enumerate() {
        let mut base = System::new(SystemConfig::new(Fabric::be()), Box::new(BaselinePolicy));
        base.run(w.program()).unwrap();
        let mut rot =
            System::new(SystemConfig::new(Fabric::be()), Box::new(RotationPolicy::new(Snake)));
        rot.run(w.program()).unwrap();
        let bg = base.tracker().utilization();
        let rg = rot.tracker().utilization();
        assert!(
            rg.max() < bg.max(),
            "benchmark #{i} ({}): rotation must reduce the worst-FU stress ({} vs {})",
            w.name(),
            rg.max(),
            bg.max()
        );
        assert!(
            rg.cov() < bg.cov(),
            "benchmark #{i} ({}): rotation must reduce utilization spread",
            w.name()
        );
    }
}

#[test]
fn baseline_pins_the_corner() {
    let sys = run_with(Box::new(BaselinePolicy), 17);
    let grid = sys.tracker().utilization();
    assert!(
        (grid.value(0, 0) - 1.0).abs() < 1e-9,
        "greedy anchoring uses the top-left FU in every configuration"
    );
}

#[test]
fn every_pattern_balances() {
    let baseline_max = run_with(Box::new(BaselinePolicy), 17).tracker().utilization().max();
    for (name, policy) in [
        ("snake", Box::new(RotationPolicy::new(Snake)) as Box<dyn AllocationPolicy>),
        ("raster", Box::new(RotationPolicy::new(Raster))),
        ("column-major", Box::new(RotationPolicy::new(ColumnMajor))),
    ] {
        let sys = run_with(policy, 17);
        let max = sys.tracker().utilization().max();
        assert!(max < 0.6 * baseline_max, "{name}: worst-FU {max} vs baseline {baseline_max}");
    }
}

#[test]
fn coarser_granularity_balances_less() {
    let per_exec = run_with(Box::new(RotationPolicy::new(Snake)), 5);
    let periodic = run_with(
        Box::new(RotationPolicy::with_granularity(Snake, MovementGranularity::Periodic(64))),
        5,
    );
    let per_load = run_with(
        Box::new(RotationPolicy::with_granularity(Snake, MovementGranularity::PerLoad)),
        5,
    );
    let m_exec = per_exec.tracker().utilization().max();
    let m_per = periodic.tracker().utilization().max();
    let m_load = per_load.tracker().utilization().max();
    assert!(m_exec <= m_per + 1e-9, "per-execution at least as flat as periodic(64)");
    assert!(m_per <= m_load + 1e-9, "periodic(64) at least as flat as per-load");
}

#[test]
fn rotation_overhead_is_negligible() {
    // Paper §V: "negligible performance overheads". Allow a small margin.
    let base = run_with(Box::new(BaselinePolicy), 23);
    let rot = run_with(Box::new(RotationPolicy::new(Snake)), 23);
    let slowdown = rot.cpu().cycles() as f64 / base.cpu().cycles() as f64;
    assert!(
        slowdown < 1.10,
        "rotation slowdown {slowdown} exceeds 10% (rotate cycles {})",
        rot.stats().rotate_cycles
    );
}

#[test]
fn utilization_mean_is_policy_invariant() {
    // The rotation moves work around; it does not change how much work there
    // is. Means must agree to within accounting noise.
    let base = run_with(Box::new(BaselinePolicy), 31);
    let rot = run_with(Box::new(RotationPolicy::new(Snake)), 31);
    let bm = base.tracker().utilization().mean();
    let rm = rot.tracker().utilization().mean();
    assert!((bm - rm).abs() < 0.02 * bm.max(1e-9), "means {bm} vs {rm}");
}
