//! Cross-crate pipeline properties: DBT → bitstream → reconfiguration unit
//! → executor agree with each other and with the interpreter on real
//! benchmark code (not just generated traces).

use cgra::{Bitstream, Executor, Fabric, Offset, ReconfigUnit};
use dbt::{ConfigCache, Translator};
use rv32::cpu::Cpu;

/// Collect every configuration the DBT builds for a benchmark.
fn configs_of(workload: &mibench::Workload, fabric: Fabric) -> Vec<dbt::CachedConfig> {
    let mut cpu = Cpu::new(1 << 20);
    cpu.load_program(workload.program()).unwrap();
    let mut dbt = Translator::new(fabric);
    let mut cache = ConfigCache::new(4096);
    while cpu.exit().is_none() {
        let r = cpu.step().unwrap();
        for built in dbt.observe(&r, cache.contains(r.pc)) {
            cache.insert(built);
        }
    }
    cache.iter().cloned().collect()
}

#[test]
fn all_benchmark_configs_survive_the_hardware_path() {
    let fabric = Fabric::bp();
    let unit = ReconfigUnit::with_movement();
    let mut total = 0usize;
    for w in mibench::suite(13) {
        for cc in configs_of(&w, fabric) {
            total += 1;
            // Bitstream round trip.
            let bs = Bitstream::encode(&fabric, &cc.config);
            let ops = bs.decode_ops(&fabric).unwrap();
            assert_eq!(ops, cc.config.ops(), "{}: pc {:#x}", w.name(), cc.start_pc);
            // Hardware load path at a non-trivial offset equals software
            // rotation.
            let off = Offset::new(1, 9);
            let loaded = unit.load(&fabric, &bs, off).unwrap();
            let mut physical = loaded.decode_physical(&fabric).unwrap();
            physical.sort_by_key(|o| (o.col, o.row));
            let mut expected: Vec<_> = cc
                .config
                .ops()
                .iter()
                .map(|o| cgra::op::PlacedOp {
                    row: (o.row + off.row) % fabric.rows,
                    col: (o.col + off.col) % fabric.cols,
                    ..*o
                })
                .collect();
            expected.sort_by_key(|o| (o.col, o.row));
            assert_eq!(physical, expected, "{}: pc {:#x}", w.name(), cc.start_pc);
        }
    }
    assert!(total > 100, "expected a rich config population, got {total}");
}

#[test]
fn benchmark_configs_are_offset_invariant() {
    // Execute each cached crc32 config at several offsets with synthetic
    // inputs; outputs and memory effects must be offset-independent.
    let fabric = Fabric::bp();
    let exec = Executor::new(&fabric);
    let w = &mibench::suite(29)[1];
    for cc in configs_of(w, fabric) {
        let inputs: Vec<u32> =
            (0..cc.input_regs.len() as u32).map(|i| 0x4000u32.wrapping_add(i * 8)).collect();
        // Synthetic inputs may make a config compute an out-of-bounds
        // address; the *fault* must then be offset-invariant too, so we
        // compare whole results.
        let run = |off: Offset| {
            let mut mem = rv32::mem::Memory::new(1 << 22);
            exec.execute(&cc.config, off, &inputs, &mut dbt::membus::MemoryBus::new(&mut mem))
                .map(|out| (out.outputs, out.cycles))
        };
        let reference = run(Offset::ORIGIN);
        for off in [Offset::new(1, 3), Offset::new(3, 31), Offset::new(2, 17)] {
            assert_eq!(run(off), reference, "pc {:#x} offset {off}", cc.start_pc);
        }
    }
}

#[test]
fn config_cache_thrash_is_correct() {
    // A tiny cache forces constant eviction/re-translation; results must
    // still verify.
    let w = &mibench::suite(3)[5]; // sha
    let cfg =
        transrec::SystemConfig { cache_capacity: 2, ..transrec::SystemConfig::new(Fabric::be()) };
    let mut sys = transrec::System::new(cfg, Box::new(uaware::BaselinePolicy));
    sys.run(w.program()).unwrap();
    w.verify(sys.cpu()).unwrap();
    assert!(sys.cache_stats().evictions > 0, "tiny cache must evict");
}

#[test]
fn translator_stats_are_consistent() {
    let fabric = Fabric::be();
    let w = &mibench::suite(1)[0];
    let mut cpu = Cpu::new(1 << 20);
    cpu.load_program(w.program()).unwrap();
    let mut dbt = Translator::new(fabric);
    let mut built_instrs = 0u64;
    let mut builds = 0u64;
    while cpu.exit().is_none() {
        let r = cpu.step().unwrap();
        for b in dbt.observe(&r, false) {
            builds += 1;
            built_instrs += b.instr_count as u64;
        }
    }
    assert_eq!(dbt.stats().configs_built, builds);
    assert_eq!(dbt.stats().instrs_covered, built_instrs);
    assert!(dbt.stats().observed >= built_instrs, "cannot cover more than retired");
}
