//! Smoke coverage for the runnable examples: each example's `main` is
//! compiled into this test binary via `#[path]` includes and executed
//! in-process, so `cargo test` fails if an example stops compiling or
//! starts erroring — they can never silently rot.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/custom_kernel.rs"]
mod custom_kernel;

#[path = "../examples/aging_forecast.rs"]
mod aging_forecast;

#[path = "../examples/fleet_mttf.rs"]
mod fleet_mttf;

#[path = "../examples/fleet_serve_demo.rs"]
mod fleet_serve_demo;

// The smoke test enters via run(seed), so the arg-parsing main is unused
// in this compilation unit.
#[allow(dead_code)]
#[path = "../examples/dse_explorer.rs"]
mod dse_explorer;

#[allow(dead_code)]
#[path = "../examples/optimality_gap.rs"]
mod optimality_gap;

#[test]
fn quickstart_runs() {
    quickstart::main().expect("quickstart example failed");
}

#[test]
fn custom_kernel_runs() {
    custom_kernel::main().expect("custom_kernel example failed");
}

#[test]
fn aging_forecast_runs() {
    aging_forecast::main().expect("aging_forecast example failed");
}

#[test]
fn fleet_mttf_runs() {
    fleet_mttf::main().expect("fleet_mttf example failed");
}

#[test]
fn fleet_serve_demo_runs() {
    fleet_serve_demo::main().expect("fleet_serve_demo example failed");
}

#[test]
fn dse_explorer_runs() {
    // Enter through run(seed), not main(): main parses std::env::args(),
    // which inside the libtest harness would pick up test-filter arguments.
    dse_explorer::run(0xDAC2020).expect("dse_explorer example failed");
}

#[test]
fn optimality_gap_runs() {
    // Same run(seed) entry as dse_explorer, for the same reason.
    optimality_gap::run(0xDAC2020).expect("optimality_gap example failed");
}
