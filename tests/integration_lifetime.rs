//! Reproduction guards for the paper's headline numbers (Table I and the
//! §V.A claims), with tolerance bands documented in EXPERIMENTS.md.

use cgra::Fabric;
use nbti::CalibratedAging;
use transrec::{run_suite, EnergyParams};
use uaware::PolicySpec;

fn suite_utilization(fabric: Fabric, rotation: bool) -> uaware::UtilizationGrid {
    let workloads = mibench::suite(0xDAC2020);
    let spec = if rotation { PolicySpec::rotation() } else { PolicySpec::Baseline };
    let run = run_suite(fabric, &workloads, &EnergyParams::default(), &spec).unwrap();
    assert!(run.all_verified());
    run.tracker.utilization()
}

#[test]
fn be_scenario_matches_paper_bands() {
    // Paper: avg 39.7%, baseline worst 94.5%, proposed worst 41.1%,
    // improvement 2.29x.
    let base = suite_utilization(Fabric::be(), false);
    let prop = suite_utilization(Fabric::be(), true);
    assert!((0.30..=0.52).contains(&base.mean()), "avg utilization {}", base.mean());
    assert!(base.max() > 0.90, "baseline worst {}", base.max());
    assert!(
        (0.30..=0.52).contains(&prop.max()),
        "proposed worst {} should approach the mean",
        prop.max()
    );
    let improvement = CalibratedAging::default().lifetime_improvement(base.max(), prop.max());
    assert!((1.9..=3.4).contains(&improvement), "BE lifetime improvement {improvement}");
}

#[test]
fn larger_fabrics_improve_more() {
    // Paper Table I ordering: BE 2.29x < BP 4.37x < BU 7.97x.
    let aging = CalibratedAging::default();
    let mut improvements = Vec::new();
    for scenario in transrec::SCENARIOS {
        let base = suite_utilization(scenario.fabric(), false);
        let prop = suite_utilization(scenario.fabric(), true);
        improvements.push(aging.lifetime_improvement(base.max(), prop.max()));
    }
    assert!(
        improvements[0] < improvements[1] && improvements[1] < improvements[2],
        "improvements must grow with fabric size: {improvements:?}"
    );
    assert!(improvements[2] > 5.0, "BU improvement {}", improvements[2]);
}

#[test]
fn paper_section_va_be_lifetime_claim() {
    // "a performance degradation of 10% only in 7 years rather than in 3".
    let aging = CalibratedAging::default();
    let base = suite_utilization(Fabric::be(), false);
    let prop = suite_utilization(Fabric::be(), true);
    let base_life = aging.lifetime_years(base.max());
    let prop_life = aging.lifetime_years(prop.max());
    assert!((2.5..=3.5).contains(&base_life), "baseline lifetime {base_life}");
    assert!(prop_life > 6.0, "proposed lifetime {prop_life}");
}

#[test]
fn area_overhead_stays_below_ten_percent() {
    // Paper Table II: +4.45% cells / +4.15% area on BE; "<10%" is the claim.
    let model = cgra::AreaModel::default();
    for scenario in transrec::SCENARIOS {
        let base = model.report(&scenario.fabric(), false);
        let ext = model.report(&scenario.fabric(), true);
        let (cells, area) = ext.overhead_vs(&base);
        assert!(cells < 0.10 && cells > 0.0, "{}: cell overhead {cells}", scenario.name);
        assert!(area < 0.10 && area > 0.0, "{}: area overhead {area}", scenario.name);
    }
}

#[test]
fn column_latency_unchanged_by_extensions() {
    // Paper Table II discussion: 120 ps with and without the extensions.
    let model = cgra::AreaModel::default();
    let f = Fabric::be();
    assert_eq!(model.column_delay_ps(&f, false), model.column_delay_ps(&f, true));
}
