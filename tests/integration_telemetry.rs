//! Cross-crate integration of the telemetry layer (DESIGN.md §10): probes
//! ride a sweep plan as data, epoch traces compose across a suite exactly
//! like the merged tracker, and sessions pause/resume around real
//! workloads.

use cgra::Fabric;
use transrec::telemetry::{ProbeSpec, UtilTrace};
use transrec::{run_sweep, SuiteSpec, SweepPlan, System};
use uaware::PolicySpec;

#[test]
fn suite_trace_composition_matches_the_merged_tracker() {
    // Chain the per-benchmark epoch traces of a sweep cell and compare the
    // final composite sample against the cell's merged tracker: the
    // integer-count composition must reproduce the aggregate exactly.
    let plan = SweepPlan::new(0xDAC2020)
        .fabric(Fabric::be())
        .policy(PolicySpec::rotation())
        .suites(vec![SuiteSpec::subset("mini", vec![0, 1, 6])]) // bitcount, crc32, stringsearch
        .probe(ProbeSpec::util_trace(25_000));
    let runs = run_sweep(&plan, 2).expect("sweep runs");
    let run = &runs[0];
    assert!(run.all_verified());

    let trace = UtilTrace::concat(
        run.benchmarks
            .iter()
            .map(|b| b.probes.iter().find_map(|p| p.as_util_trace()).expect("probe attached")),
    );
    let last = trace.samples.last().expect("non-empty trace");
    assert_eq!(last.executions, run.tracker.executions());
    assert_eq!(last.exec_counts, run.tracker.exec_counts());
    assert_eq!(
        last.grid(trace.rows, trace.cols),
        run.tracker.utilization(),
        "composite snapshot equals the merged utilization grid"
    );
    let total: u64 = run.benchmarks.iter().map(|b| b.stats.total_cycles()).sum();
    assert_eq!(trace.total_cycles(), total, "cycle axis spans the whole suite");
}

#[test]
fn rotation_converges_faster_than_it_finishes() {
    // The convergence story behind the fig8 report: under rotation the
    // cumulative worst-FU stress settles to within 5% of its final value
    // well before the end of the run, while the baseline is pinned at
    // 100% from the first offload.
    let plan = SweepPlan::new(0xDAC2020)
        .fabric(Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::rotation())
        .suites(vec![SuiteSpec::subset("mini", vec![7])]) // susan_corners (longest run)
        .probe(ProbeSpec::util_trace(5_000));
    let runs = run_sweep(&plan, 0).expect("sweep runs");
    let worst_of = |i: usize| {
        runs[i].benchmarks[0].probes[0].as_util_trace().expect("probe attached").worst_series()
    };
    let baseline = worst_of(0);
    assert!(baseline.len() > 10, "many epochs sampled, got {}", baseline.len());
    assert!(baseline.iter().all(|(_, w)| *w > 0.9), "corner bias from the first epoch on");
    let rotation = worst_of(1);
    let (_, final_worst) = *rotation.last().unwrap();
    assert!(final_worst < 0.7, "rotation flattens stress, got {final_worst}");
    // Find the first sample already inside the 5% band; it must come well
    // before the end of the run.
    let settle =
        rotation.iter().find(|(_, w)| (w - final_worst).abs() <= 0.05 * final_worst).unwrap().0;
    let total = rotation.last().unwrap().0;
    assert!(settle < total, "stress flattens before the run ends ({settle}/{total})");
}

#[test]
fn session_pauses_and_resumes_around_a_real_workload() {
    let suite = mibench::suite(0xDAC2020);
    let w = &suite[1]; // crc32
    let mut reference =
        System::builder(Fabric::be()).policy(PolicySpec::rotation()).build().unwrap();
    reference.run(w.program()).unwrap();
    let total = reference.cpu().cycles();

    let mut sys = System::builder(Fabric::be()).policy(PolicySpec::rotation()).build().unwrap();
    let mut session = sys.session(w.program()).unwrap();
    let mut pauses = 0;
    while session.run_for(total / 8).unwrap().is_running() {
        pauses += 1;
        assert!(pauses < 64, "must terminate");
    }
    assert!(pauses >= 4, "several mid-run pauses, got {pauses}");
    w.verify(sys.cpu()).expect("oracle passes on the stepped run");
    assert_eq!(sys.stats(), reference.stats(), "pausing never changes the simulation");
    assert_eq!(sys.cpu().cycles(), total);
}
